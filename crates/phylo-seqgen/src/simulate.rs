//! Simulation of molecular sequences along a phylogenetic tree.
//!
//! The simulator plays the role of Seq-Gen in the paper's experimental setup:
//! given a tree with branch lengths and a substitution model with discrete Γ
//! rate heterogeneity, it draws a root state per column from the stationary
//! distribution, assigns each column a rate category, and evolves the states
//! along the branches using the model's transition probabilities.

use rand::Rng;

use phylo_data::Alignment;
use phylo_models::PartitionModel;
use phylo_tree::{NodeId, Tree};

/// Configuration of one simulation run (one partition's worth of columns).
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Number of alignment columns to simulate.
    pub columns: usize,
    /// Fraction of taxa that are missing (all-gap) in this gene, emulating the
    /// "gappy" structure of phylogenomic alignments. 0.0 disables gaps.
    pub missing_taxa_fraction: f64,
    /// If true, re-draw duplicate columns (up to a bounded number of attempts)
    /// so that the alignment consists of unique columns only, as the paper's
    /// simulated datasets do (`m = m′`).
    pub enforce_unique_columns: bool,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            columns: 1000,
            missing_taxa_fraction: 0.0,
            enforce_unique_columns: false,
        }
    }
}

/// Simulates an alignment along `tree` under `model`.
///
/// Returns the raw character alignment (taxon order = the tree's leaf order).
///
/// # Panics
///
/// Panics if `config.columns == 0` or the missing fraction is outside `[0, 1)`.
pub fn simulate_alignment<R: Rng>(
    tree: &Tree,
    model: &PartitionModel,
    config: &SimulationConfig,
    rng: &mut R,
) -> Alignment {
    assert!(config.columns > 0, "cannot simulate an empty alignment");
    assert!(
        (0.0..1.0).contains(&config.missing_taxa_fraction),
        "missing fraction must be in [0, 1)"
    );
    let n_taxa = tree.n_taxa();
    let data_type = model.data_type();
    let states = model.states();

    // Which taxa are missing entirely (data holes).
    let missing: Vec<bool> = (0..n_taxa)
        .map(|_| rng.gen_bool(config.missing_taxa_fraction))
        .collect();
    // Never blank out everything: keep at least two taxa with data.
    let present = missing.iter().filter(|&&m| !m).count();
    let missing = if present < 2 {
        vec![false; n_taxa]
    } else {
        missing
    };

    let mut columns: Vec<Vec<u8>> = Vec::with_capacity(config.columns);
    let mut seen = std::collections::HashSet::new();
    let max_attempts = config.columns * 20;
    let mut attempts = 0usize;
    while columns.len() < config.columns {
        attempts += 1;
        let column = simulate_column(tree, model, states, rng);
        if config.enforce_unique_columns && attempts < max_attempts && !seen.insert(column.clone())
        {
            continue;
        }
        columns.push(column);
    }

    // Assemble rows.
    let rows: Vec<(String, Vec<u8>)> = (0..n_taxa)
        .map(|taxon| {
            let name = tree.taxon_name(taxon).to_string();
            let row: Vec<u8> = (0..config.columns)
                .map(|c| {
                    if missing[taxon] {
                        b'-'
                    } else {
                        data_type.state_char(columns[c][taxon] as usize) as u8
                    }
                })
                .collect();
            (name, row)
        })
        .collect();
    Alignment::from_bytes(rows).expect("simulated rows are rectangular by construction")
}

/// Simulates a single column: returns the state index of every taxon.
fn simulate_column<R: Rng>(
    tree: &Tree,
    model: &PartitionModel,
    states: usize,
    rng: &mut R,
) -> Vec<u8> {
    let freqs = model.substitution().frequencies();
    // Per-column rate category (equal probability).
    let rates = model.gamma_rates();
    let rate = rates[rng.gen_range(0..rates.len())];

    // Root the simulation at the internal node adjacent to leaf 0.
    let root: NodeId = tree.neighbors(0)[0].0;
    let root_state = sample_distribution(freqs, rng);

    let mut result = vec![0u8; tree.n_taxa()];
    // Depth-first propagation from the root to every node.
    let mut stack: Vec<(NodeId, NodeId, usize)> = Vec::new(); // (node, parent, parent_state)
    for &(child, branch) in tree.neighbors(root) {
        let t = tree.branch_length(branch) * rate;
        let child_state = evolve_state(model, root_state, t, states, rng);
        stack.push((child, root, child_state));
    }
    while let Some((node, parent, state)) = stack.pop() {
        if tree.is_leaf(node) {
            result[node] = state as u8;
            continue;
        }
        for &(child, branch) in tree.neighbors(node) {
            if child == parent {
                continue;
            }
            let t = tree.branch_length(branch) * rate;
            let child_state = evolve_state(model, state, t, states, rng);
            stack.push((child, node, child_state));
        }
    }
    result
}

fn evolve_state<R: Rng>(
    model: &PartitionModel,
    from: usize,
    t: f64,
    states: usize,
    rng: &mut R,
) -> usize {
    let pmat = model.substitution().transition_matrix(t);
    let row: Vec<f64> = (0..states).map(|j| pmat[(from, j)]).collect();
    sample_distribution(&row, rng)
}

fn sample_distribution<R: Rng>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_data::DataType;
    use phylo_tree::random::random_tree_with_lengths;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tree(n: usize, mean_branch: f64, seed: u64) -> Tree {
        let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        random_tree_with_lengths(&names, mean_branch, &mut rng)
    }

    #[test]
    fn dimensions_and_determinism() {
        let t = tree(10, 0.1, 1);
        let model = PartitionModel::default_for(DataType::Dna);
        let cfg = SimulationConfig {
            columns: 200,
            ..Default::default()
        };
        let mut rng1 = ChaCha8Rng::seed_from_u64(7);
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        let a = simulate_alignment(&t, &model, &cfg, &mut rng1);
        let b = simulate_alignment(&t, &model, &cfg, &mut rng2);
        assert_eq!(a.taxa_count(), 10);
        assert_eq!(a.columns(), 200);
        assert_eq!(a, b, "simulation must be deterministic for a fixed seed");
    }

    #[test]
    fn short_branches_give_conserved_columns() {
        let t = tree(8, 0.001, 2);
        let model = PartitionModel::default_for(DataType::Dna);
        let cfg = SimulationConfig {
            columns: 300,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let aln = simulate_alignment(&t, &model, &cfg, &mut rng);
        // With nearly zero branch lengths almost every column is constant.
        let constant = (0..aln.columns())
            .filter(|&c| {
                let first = aln.char_at(0, c);
                (0..aln.taxa_count()).all(|t| aln.char_at(t, c) == first)
            })
            .count();
        assert!(
            constant as f64 > 0.95 * aln.columns() as f64,
            "expected mostly constant columns, got {constant}/{}",
            aln.columns()
        );
    }

    #[test]
    fn long_branches_give_divergent_columns() {
        let t = tree(8, 2.0, 4);
        let model = PartitionModel::default_for(DataType::Dna);
        let cfg = SimulationConfig {
            columns: 300,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let aln = simulate_alignment(&t, &model, &cfg, &mut rng);
        let constant = (0..aln.columns())
            .filter(|&c| {
                let first = aln.char_at(0, c);
                (0..aln.taxa_count()).all(|t| aln.char_at(t, c) == first)
            })
            .count();
        assert!(
            (constant as f64) < 0.3 * aln.columns() as f64,
            "expected mostly variable columns, got {constant}/{}",
            aln.columns()
        );
    }

    #[test]
    fn base_composition_roughly_matches_stationary_frequencies() {
        let t = tree(20, 0.2, 6);
        let model = PartitionModel::default_for(DataType::Dna);
        let cfg = SimulationConfig {
            columns: 2000,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let aln = simulate_alignment(&t, &model, &cfg, &mut rng);
        let mut counts = [0usize; 4];
        for taxon in 0..aln.taxa_count() {
            for c in 0..aln.columns() {
                match aln.char_at(taxon, c) {
                    b'A' => counts[0] += 1,
                    b'C' => counts[1] += 1,
                    b'G' => counts[2] += 1,
                    b'T' => counts[3] += 1,
                    _ => {}
                }
            }
        }
        let total: usize = counts.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / total as f64;
            let expected = model.substitution().frequencies()[i];
            assert!(
                (freq - expected).abs() < 0.05,
                "state {i}: simulated {freq} vs stationary {expected}"
            );
        }
    }

    #[test]
    fn unique_columns_are_enforced() {
        let t = tree(12, 0.3, 9);
        let model = PartitionModel::default_for(DataType::Dna);
        let cfg = SimulationConfig {
            columns: 400,
            enforce_unique_columns: true,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let aln = simulate_alignment(&t, &model, &cfg, &mut rng);
        assert!(
            aln.all_columns_unique(),
            "columns must be unique when requested"
        );
    }

    #[test]
    fn missing_taxa_produce_gap_rows() {
        let t = tree(20, 0.1, 11);
        let model = PartitionModel::default_for(DataType::Dna);
        let cfg = SimulationConfig {
            columns: 100,
            missing_taxa_fraction: 0.4,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let aln = simulate_alignment(&t, &model, &cfg, &mut rng);
        let all_gap_rows = (0..aln.taxa_count())
            .filter(|&taxon| (0..aln.columns()).all(|c| aln.char_at(taxon, c) == b'-'))
            .count();
        assert!(all_gap_rows > 0, "expected some all-gap taxa");
        assert!(all_gap_rows < aln.taxa_count(), "some taxa must keep data");
        assert!(aln.gappyness() > 0.1);
    }

    #[test]
    fn protein_simulation_uses_amino_acid_alphabet() {
        let t = tree(6, 0.2, 13);
        let model = PartitionModel::default_for(DataType::Protein);
        let cfg = SimulationConfig {
            columns: 50,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let aln = simulate_alignment(&t, &model, &cfg, &mut rng);
        for taxon in 0..aln.taxa_count() {
            for c in 0..aln.columns() {
                let ch = aln.char_at(taxon, c) as char;
                assert!(
                    DataType::Protein.encode(ch).is_some(),
                    "invalid protein character {ch}"
                );
            }
        }
    }
}
