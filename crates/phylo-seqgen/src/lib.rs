//! Sequence simulation and evaluation-dataset generation.
//!
//! The paper evaluates on (a) twelve simulated DNA alignments generated with
//! Seq-Gen on seed trees of 10–100 taxa with 5,000–50,000 columns, partitioned
//! into 1,000/5,000/10,000-column genes, and (b) three real-world phylogenomic
//! alignments provided by collaborators. Neither Seq-Gen output nor the
//! real alignments are available here, so this crate provides:
//!
//! * [`simulate`] — a Seq-Gen substitute that evolves sequences along a tree
//!   under the same model class (GTR/protein + discrete Γ),
//! * [`datasets`] — generators that reproduce the *dimensions* of every
//!   dataset in the paper (taxon counts, column counts, partition schemes,
//!   data types, per-partition length ranges, gappyness), which are the only
//!   properties that matter for the load-balance study.
//!
//! Everything is seeded and deterministic.
//!
//! ```
//! use phylo_seqgen::datasets::paper_simulated;
//!
//! // d8_100 partitioned into 50-column genes, simulated on a random tree.
//! let spec = paper_simulated(8, 100, 50, 42);
//! assert_eq!(spec.partition_count(), 2);
//! let dataset = spec.generate();
//! assert_eq!(dataset.patterns.taxa.len(), 8);
//! assert!(dataset.patterns.total_patterns() > 0);
//! // Same spec, same seed → identical dataset.
//! let again = paper_simulated(8, 100, 50, 42).generate();
//! assert_eq!(again.patterns.total_patterns(), dataset.patterns.total_patterns());
//! ```

#![forbid(unsafe_code)]

pub mod datasets;
pub mod simulate;

pub use datasets::{
    paper_real_world, paper_simulated, DatasetSpec, GeneratedDataset, RealWorldKind,
};
pub use simulate::{simulate_alignment, SimulationConfig};
