//! Shared per-branch transition and tip-lookup tables.
//!
//! The paper's Pthreads layout broadcasts one command per parallel region and
//! lets every worker execute it on its own patterns. In the per-call kernel
//! that means every worker recomputes the same per-category transition
//! matrices for every node update — `T` workers redoing identical
//! O(states³ · categories) eigen work per branch, with fresh heap allocations
//! each time — and the tip inner loops re-derive the same ambiguity-mask sums
//! per pattern. This module moves that work to the *master*: a
//! [`BranchTables`] is computed once per (partition, branch) and shared
//! read-only (`Arc`) with every worker inside the [`KernelOp`] payload.
//!
//! Two tables per (branch, category):
//!
//! * the transition matrix `P(t·r_c)` itself (what `category_pmats` used to
//!   recompute per call), and
//! * RAxML-style *tip lookup rows*: for every ambiguity mask `m` in the
//!   partition's [`MaskDictionary`], the vector over target states `s` of
//!   `Σ_{a ∈ m} P[s][a]`. A tip child in `newview`/`evaluate` then costs one
//!   dictionary lookup per pattern plus contiguous row reads, instead of a
//!   per-(category, state) bit loop.
//!
//! For DNA the dictionary is the full direct-indexed 2⁴ = 16 mask space; for
//! protein it is the 20 canonical single-state masks, the common ambiguity
//! codes (`B`, `Z`, `J`, `X`/gap) and every further mask actually observed in
//! the partition, looked up by binary search. Masks outside the dictionary
//! (impossible for dictionaries built from the data) fall back to the
//! reference bit loop, so table lookups can never change a result.
//!
//! Summation order inside a tip row is the ascending-bit order of the
//! reference `tip_sum` loop, so the table-based kernels agree with the
//! per-call path **bit for bit**, not just to tolerance.
//!
//! [`KernelOp`]: crate::executor::KernelOp

use std::sync::Arc;

use phylo_data::{DataType, EncodedState};
use phylo_models::PartitionModel;

use crate::error::OpError;

/// Which inner-loop implementation the table-based kernels run.
///
/// The tables themselves are identical under both dispatches; the enum only
/// selects how the per-pattern loops consume them. It travels inside the
/// [`NewviewTables`]/[`EdgeTables`] command payloads (stamped by the engine
/// when the payload is assembled), so every backend — including the threaded
/// workers that receive ops over a channel — routes without any protocol
/// change.
///
/// * [`Scalar`](KernelDispatch::Scalar) — the original tabled loops in
///   [`crate::ops`]: one running accumulator per (pattern, category, state),
///   every child kind matched per state. This is the bit-for-bit-comparable
///   reference the differential test harness trusts.
/// * [`Blocked`](KernelDispatch::Blocked) (default) — the cache-blocked,
///   width-specialized loops in [`crate::blocked`]: fully unrolled 4×4
///   matrix–vector products for DNA, 4-lane blocked accumulation over
///   L1-sized pattern tiles for protein. DNA preserves the scalar
///   accumulation order exactly (bit for bit); the protein lanes re-associate
///   the 20-term inner products, so protein agreement is ≤1e-12 in lnL by
///   contract (see `tests/kernel_differential.rs`). State widths other than
///   4 and 20 fall back to the scalar loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelDispatch {
    /// Scalar tabled loops: the bit-for-bit reference path.
    Scalar,
    /// Cache-blocked, width-specialized loops (the fast default).
    #[default]
    Blocked,
}

impl KernelDispatch {
    /// Short label (telemetry, bench envelopes, diagnostics).
    pub fn label(self) -> &'static str {
        match self {
            KernelDispatch::Scalar => "scalar",
            KernelDispatch::Blocked => "blocked",
        }
    }
}

/// The tip-state masks of one partition, indexable in O(1) (DNA) or
/// O(log n) (protein).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskDictionary {
    states: usize,
    /// Sorted distinct masks. For the direct (DNA) dictionary this is the
    /// full `0..2^states` space and the mask *is* the index.
    masks: Vec<EncodedState>,
    direct: bool,
}

impl MaskDictionary {
    /// Builds the dictionary for a partition: the full 16-entry mask space
    /// for DNA; for protein the 20 canonical masks, the common ambiguity
    /// codes and every distinct mask observed in `tip_states`.
    pub fn for_partition(data_type: DataType, tip_states: &[EncodedState]) -> Self {
        let states = data_type.states();
        match data_type {
            DataType::Dna => Self {
                states,
                masks: (0..(1u32 << states)).collect(),
                direct: true,
            },
            DataType::Protein => {
                let mut masks: Vec<EncodedState> = (0..states as u32).map(|i| 1 << i).collect();
                // The common multi-state codes: B = N|D, Z = Q|E, J = I|L and
                // the fully ambiguous X/gap state. `encode` covers all three
                // for the protein alphabet; should an alphabet revision ever
                // drop one, the dictionary simply omits it and tip lookups
                // for that code fall back to the reference bit loop.
                masks.extend(['B', 'Z', 'J'].iter().filter_map(|&c| data_type.encode(c)));
                masks.push(data_type.gap_state());
                masks.extend_from_slice(tip_states);
                masks.sort_unstable();
                masks.dedup();
                Self {
                    states,
                    masks,
                    direct: false,
                }
            }
        }
    }

    /// Number of masks in the dictionary.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether the dictionary is empty (never true for a built dictionary).
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Number of base states of the alphabet.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Dictionary index of a mask, or `None` for a mask the dictionary does
    /// not cover (the kernels then fall back to the reference bit loop).
    #[inline]
    pub fn index_of(&self, mask: EncodedState) -> Option<usize> {
        if self.direct {
            let i = mask as usize;
            (i < self.masks.len()).then_some(i)
        } else {
            self.masks.binary_search(&mask).ok()
        }
    }

    /// The mask stored at a dictionary index.
    pub fn mask_at(&self, index: usize) -> EncodedState {
        self.masks[index]
    }
}

/// Sum of `row[a]` over the set bits of `mask`, in ascending bit order — the
/// exact summation order of the reference kernel's tip loop.
#[inline]
pub(crate) fn mask_sum(row: &[f64], mask: EncodedState) -> f64 {
    let mut sum = 0.0;
    let mut m = mask;
    while m != 0 {
        let a = m.trailing_zeros() as usize;
        sum += row[a];
        m &= m - 1;
    }
    sum
}

/// Shared read-only tables for one (partition, branch): the per-category
/// transition matrices and the tip lookup rows over the partition's mask
/// dictionary. Built once by the master, cloned as an `Arc` into every
/// worker's command payload.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchTables {
    states: usize,
    categories: usize,
    /// `categories × states × states`, row-major per category:
    /// `pmats[(c·states + s)·states + a] = P_c[s][a]`.
    pmats: Vec<f64>,
    /// Column-major mirror of `pmats` for wide alphabets:
    /// `pmats_t[(c·states + a)·states + s] = P_c[s][a]`. The blocked
    /// 20-state kernel consumes matrix *columns* (broadcast-`x[a]` GEMV with
    /// one accumulator lane per output state — no horizontal reductions), so
    /// the columns must be contiguous. Empty for narrow alphabets: the
    /// 4-state kernel keeps the row-major fully unrolled form, where a
    /// single-accumulator column walk would serialize the FMA chain.
    pmats_t: Vec<f64>,
    /// `categories × n_masks × states`:
    /// `tip_sums[(c·n_masks + m)·states + s] = Σ_{a ∈ mask_m} P_c[s][a]`.
    /// The row over `s` is contiguous, matching the kernels' inner loops.
    tip_sums: Vec<f64>,
    dict: Arc<MaskDictionary>,
}

impl BranchTables {
    /// Computes the tables for one branch of one partition.
    ///
    /// # Errors
    ///
    /// [`OpError::InvalidBranchLength`] if `branch_length` is negative, NaN
    /// or infinite — the kernel-boundary domain check (a Brent/Newton probe
    /// must never smuggle such a value into an exponential);
    /// [`OpError::DictStates`] if the dictionary was compiled for a different
    /// alphabet than the model (mixing partitions' dictionaries would build
    /// tip rows with the wrong stride).
    pub fn build(
        model: &PartitionModel,
        dict: &Arc<MaskDictionary>,
        branch_length: f64,
    ) -> Result<Self, OpError> {
        validate_branch_length(branch_length)?;
        let states = model.states();
        let categories = model.categories();
        if states != dict.states() {
            return Err(OpError::DictStates {
                model: states,
                dict: dict.states(),
            });
        }
        let n_masks = dict.len();

        let mut pmats = vec![0.0; categories * states * states];
        for (c, &rate) in model.gamma_rates().iter().enumerate() {
            let start = c * states * states;
            model.substitution().eigen().transition_matrix_into(
                branch_length * rate,
                &mut pmats[start..][..states * states],
            );
        }

        let pmats_t = if states == crate::blocked::BLOCKED_PROTEIN_STATES {
            let mut t = vec![0.0; pmats.len()];
            for c in 0..categories {
                let src = &pmats[c * states * states..][..states * states];
                let dst = &mut t[c * states * states..][..states * states];
                for s in 0..states {
                    for a in 0..states {
                        dst[a * states + s] = src[s * states + a];
                    }
                }
            }
            t
        } else {
            Vec::new()
        };

        let mut tip_sums = vec![0.0; categories * n_masks * states];
        for c in 0..categories {
            let pmat = &pmats[c * states * states..][..states * states];
            for m in 0..n_masks {
                let mask = dict.mask_at(m);
                let row = &mut tip_sums[(c * n_masks + m) * states..][..states];
                for (s, out) in row.iter_mut().enumerate() {
                    *out = mask_sum(&pmat[s * states..s * states + states], mask);
                }
            }
        }

        Ok(Self {
            states,
            categories,
            pmats,
            pmats_t,
            tip_sums,
            dict: Arc::clone(dict),
        })
    }

    /// Number of base states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Number of rate categories.
    pub fn categories(&self) -> usize {
        self.categories
    }

    /// The transition matrix of one category (`states × states`, row-major).
    #[inline]
    pub fn pmat(&self, category: usize) -> &[f64] {
        &self.pmats[category * self.states * self.states..][..self.states * self.states]
    }

    /// The column-major transition matrix of one category
    /// (`pmat_t[a·states + s] = P_c[s][a]`), or `None` for alphabets the
    /// blocked kernel handles row-major. See the `pmats_t` field doc.
    #[inline]
    pub fn pmat_t(&self, category: usize) -> Option<&[f64]> {
        if self.pmats_t.is_empty() {
            return None;
        }
        Some(&self.pmats_t[category * self.states * self.states..][..self.states * self.states])
    }

    /// The tip-sum row of one (category, dictionary index): the vector over
    /// target states `s` of `Σ_{a ∈ mask} P_c[s][a]`.
    #[inline]
    pub fn tip_row(&self, category: usize, mask_index: usize) -> &[f64] {
        &self.tip_sums[(category * self.dict.len() + mask_index) * self.states..][..self.states]
    }

    /// The mask dictionary the tip rows are indexed by.
    pub fn dict(&self) -> &MaskDictionary {
        &self.dict
    }

    /// The shared dictionary handle — its `Arc` identity keys the per-slice
    /// tip-index cache ([`crate::slice::SliceBuffers::tip_indices`]).
    pub fn dict_arc(&self) -> &Arc<MaskDictionary> {
        &self.dict
    }

    /// Bytes held by the tables (diagnostics).
    pub fn allocated_bytes(&self) -> usize {
        (self.pmats.len() + self.pmats_t.len() + self.tip_sums.len()) * std::mem::size_of::<f64>()
    }
}

/// The shared-table payload of one `Newview` command: for every partition
/// with a traversal plan, the (left, right) branch tables of each step,
/// aligned index-for-index with the plan's steps.
#[derive(Debug, Clone)]
pub struct NewviewTables {
    /// One optional table list per partition (`None` where the plan is
    /// `None`).
    pub per_partition: Vec<Option<Vec<StepTables>>>,
    /// Which inner-loop implementation consumes these tables.
    pub dispatch: KernelDispatch,
}

/// The branch tables a single traversal step needs: one per child branch.
#[derive(Debug, Clone)]
pub struct StepTables {
    /// Tables of the branch towards the left child.
    pub left: Arc<BranchTables>,
    /// Tables of the branch towards the right child.
    pub right: Arc<BranchTables>,
}

/// The shared-table payload of one `Evaluate` command: the virtual-root
/// branch tables of every active partition.
#[derive(Debug, Clone)]
pub struct EdgeTables {
    /// One optional table per partition (`None` for masked-out partitions).
    pub per_partition: Vec<Option<Arc<BranchTables>>>,
    /// Which inner-loop implementation consumes these tables.
    pub dispatch: KernelDispatch,
}

/// The kernel-boundary domain check for branch lengths.
///
/// # Errors
///
/// [`OpError::InvalidBranchLength`] for negative, NaN or infinite lengths.
#[inline]
pub fn validate_branch_length(t: f64) -> Result<(), OpError> {
    if !t.is_finite() || t < 0.0 {
        return Err(OpError::InvalidBranchLength { value: t });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{ModelSet, PartitionModel};

    fn dna_model() -> PartitionModel {
        PartitionModel::default_for(DataType::Dna)
    }

    fn protein_model() -> PartitionModel {
        PartitionModel::default_for(DataType::Protein)
    }

    #[test]
    fn dna_dictionary_is_direct_and_complete() {
        let dict = MaskDictionary::for_partition(DataType::Dna, &[0b0101, 0b1111]);
        assert_eq!(dict.len(), 16);
        for mask in 0u32..16 {
            assert_eq!(dict.index_of(mask), Some(mask as usize));
            assert_eq!(dict.mask_at(mask as usize), mask);
        }
        assert_eq!(dict.index_of(16), None);
    }

    #[test]
    fn protein_dictionary_covers_canonical_common_and_observed() {
        let odd_mask: EncodedState = 0b1010_1010_1010_1010_1010; // not a real code
        let dict = MaskDictionary::for_partition(DataType::Protein, &[1 << 3, odd_mask]);
        // All 20 canonical masks.
        for i in 0..20u32 {
            assert!(dict.index_of(1 << i).is_some(), "canonical state {i}");
        }
        // The common ambiguity codes and the gap state.
        for c in ['B', 'Z', 'J'] {
            let mask = DataType::Protein.encode(c).unwrap();
            assert!(dict.index_of(mask).is_some(), "ambiguity code {c}");
        }
        assert!(dict.index_of(DataType::Protein.gap_state()).is_some());
        // The observed exotic mask is covered; an unobserved one is not.
        assert!(dict.index_of(odd_mask).is_some());
        assert_eq!(dict.index_of(0b11), None);
        assert!(!dict.is_empty());
        assert_eq!(dict.states(), 20);
    }

    #[test]
    fn tip_rows_match_the_reference_bit_loop_exactly() {
        for model in [dna_model(), protein_model()] {
            let states = model.states();
            let data_type = model.data_type();
            let dict = Arc::new(MaskDictionary::for_partition(data_type, &[]));
            let tables = BranchTables::build(&model, &dict, 0.37).unwrap();
            assert_eq!(tables.states(), states);
            assert_eq!(tables.categories(), model.categories());
            for c in 0..model.categories() {
                let pmat = tables.pmat(c);
                for m in 0..dict.len() {
                    let mask = dict.mask_at(m);
                    let row = tables.tip_row(c, m);
                    for s in 0..states {
                        let reference = mask_sum(&pmat[s * states..s * states + states], mask);
                        // Bit-for-bit: same additions in the same order.
                        assert!(
                            row[s] == reference,
                            "c={c} mask={mask:#b} s={s}: {} vs {reference}",
                            row[s]
                        );
                    }
                }
            }
            assert!(tables.allocated_bytes() > 0);
        }
    }

    #[test]
    fn pmats_match_the_per_call_computation() {
        let model = dna_model();
        let dict = Arc::new(MaskDictionary::for_partition(DataType::Dna, &[]));
        let t = 0.21;
        let tables = BranchTables::build(&model, &dict, t).unwrap();
        for (c, &rate) in model.gamma_rates().iter().enumerate() {
            let mut reference = vec![0.0; 16];
            model
                .substitution()
                .eigen()
                .transition_matrix_into(t * rate, &mut reference);
            assert_eq!(tables.pmat(c), &reference[..], "category {c}");
        }
    }

    #[test]
    fn out_of_domain_branch_lengths_are_typed_errors() {
        let model = dna_model();
        let dict = Arc::new(MaskDictionary::for_partition(DataType::Dna, &[]));
        for bad in [-1.0, -1e-30, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = BranchTables::build(&model, &dict, bad).unwrap_err();
            assert!(
                matches!(err, OpError::InvalidBranchLength { .. }),
                "{bad}: {err:?}"
            );
        }
        // Zero and positive lengths are in-domain.
        assert!(BranchTables::build(&model, &dict, 0.0).is_ok());
        assert!(validate_branch_length(1.5).is_ok());
    }

    #[test]
    fn model_set_round_trip_builds_per_partition_tables() {
        use phylo_data::{Alignment, PartitionSet, PartitionedPatterns};
        let aln = Alignment::new(vec![
            ("t1".into(), "ACGTACGT".into()),
            ("t2".into(), "ACGAACGA".into()),
        ])
        .unwrap();
        let ps = PartitionSet::equal_length(DataType::Dna, 8, 4);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let models = ModelSet::default_for(&pp, phylo_models::BranchLengthMode::Joint);
        for (pi, part) in pp.partitions.iter().enumerate() {
            let dict = Arc::new(MaskDictionary::for_partition(
                part.data_type,
                &part.tip_states,
            ));
            let tables = BranchTables::build(models.model(pi), &dict, 0.1).unwrap();
            assert_eq!(tables.dict().len(), 16);
        }
    }
}
