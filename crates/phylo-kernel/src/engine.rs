//! The high-level likelihood engine.
//!
//! [`LikelihoodKernel`] plays the role of the *master thread* in the paper's
//! parallelization: it owns the tree, the per-partition models, the branch
//! lengths and the CLV validity cache, and it drives an [`Executor`] by
//! issuing kernel commands (traversal lists, evaluations, sum tables,
//! derivative evaluations). Everything the optimizers and the tree search do
//! goes through this type, so the *number of commands issued* — the
//! synchronization count that distinguishes oldPAR from newPAR — is visible in
//! one place.
//!
//! # Fallible API
//!
//! The engine's likelihood-facing methods are the **`try_*` family** —
//! [`LikelihoodKernel::try_update_clvs`],
//! [`LikelihoodKernel::try_log_likelihood`] (and `_at` / `_partitions`),
//! [`LikelihoodKernel::try_prepare_branch`],
//! [`LikelihoodKernel::try_branch_derivatives`], plus the fallible
//! constructor [`LikelihoodKernel::try_new`] — all returning
//! [`KernelError`]. A worker death in a parallel backend surfaces as
//! `KernelError::Exec(ExecError::WorkerDied { .. })`, and drivers that hold
//! a `Reassignable` executor can *recover* by rebuilding the workers and
//! resuming. (The panicking wrappers of the pre-fallible API —
//! `log_likelihood` & co. — were deleted one release after their
//! deprecation, as promised.)

use std::collections::HashMap;
use std::sync::Arc;

use phylo_data::PartitionedPatterns;
use phylo_models::{BranchLengthMode, ModelSet};
use phylo_tree::spr::{self, SprMove, SprUndo};
use phylo_tree::{BranchId, NodeId, TraversalPlan, Tree, TreeError};

use crate::branch_lengths::BranchLengths;
use crate::error::KernelError;
use crate::executor::{ExecContext, Executor, KernelOp, PartitionMask, SequentialExecutor};
use crate::ops::EdgeDerivatives;
use crate::tables::{
    validate_branch_length, BranchTables, EdgeTables, KernelDispatch, MaskDictionary,
    NewviewTables, StepTables,
};
use crate::validity::ClvValidity;

/// Counters describing how much work the engine has issued.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Total CLV updates issued (traversal steps × active partitions).
    pub newview_node_updates: u64,
    /// Number of evaluate commands issued.
    pub evaluations: u64,
    /// Number of sum-table commands issued.
    pub sumtable_builds: u64,
    /// Number of derivative commands issued.
    pub derivative_calls: u64,
    /// Number of SPR moves applied.
    pub spr_moves: u64,
    /// Shared branch tables computed by the master (cache misses); lookups
    /// served from the cache are free and not counted.
    pub table_builds: u64,
    /// Branch-table requests served by *cross-branch* sharing: the branch had
    /// no cached entry, but another branch of the same partition with the
    /// same stored length (hence identical per-category `t·r` products and
    /// identical transition/tip-lookup tables) already built one. Common once
    /// smoothing converges and many branches settle on equal lengths.
    pub table_dedup_hits: u64,
}

/// The master-side store of shared per-branch tables: one
/// [`MaskDictionary`] per partition (fixed for the dataset's lifetime) and a
/// `(partition, branch) → Arc<BranchTables>` cache, invalidated whenever the
/// branch's length or the partition's model changes (and wholesale on
/// topology changes). See [`crate::tables`] for what the tables hold.
#[derive(Debug, Clone)]
struct TableStore {
    enabled: bool,
    /// Inner-loop implementation stamped into every table payload.
    dispatch: KernelDispatch,
    dicts: Vec<Arc<MaskDictionary>>,
    cache: HashMap<(usize, BranchId), Arc<BranchTables>>,
    /// Cross-branch sharing index: `(partition, length bits) →` the tables of
    /// *some* branch of that partition with that exact stored length.
    /// [`BranchTables::build`] is a pure function of (model, dictionary,
    /// length), and within a partition the model and dictionary are fixed, so
    /// an equal length means identical per-category `t·r` products and
    /// therefore identical tables — the entry can be handed to any branch.
    /// Length changes leave this map untouched (the entries are keyed by the
    /// value, not the branch); model changes purge the partition; topology
    /// changes clear it with the rest of the store.
    by_length: HashMap<(usize, u64), Arc<BranchTables>>,
}

/// Upper bound on the cross-branch sharing index. Newton/Brent probing
/// generates many short-lived distinct lengths; once the index outgrows this
/// bound it is dropped wholesale (the primary cache is untouched) rather than
/// let probe debris accumulate for the lifetime of the dataset.
const LENGTH_INDEX_CAP: usize = 4096;

impl TableStore {
    fn new(patterns: &PartitionedPatterns) -> Self {
        let dicts = patterns
            .partitions
            .iter()
            .map(|p| Arc::new(MaskDictionary::for_partition(p.data_type, &p.tip_states)))
            .collect();
        Self {
            enabled: true,
            dispatch: KernelDispatch::default(),
            dicts,
            cache: HashMap::new(),
            by_length: HashMap::new(),
        }
    }

    fn invalidate_branch(&mut self, partitions: usize, partition: Option<usize>, branch: BranchId) {
        match partition {
            Some(p) => {
                self.cache.remove(&(p, branch));
            }
            None => {
                for p in 0..partitions {
                    self.cache.remove(&(p, branch));
                }
            }
        }
    }

    fn invalidate_partition(&mut self, partition: usize) {
        self.cache.retain(|&(p, _), _| p != partition);
        self.by_length.retain(|&(p, _), _| p != partition);
    }

    fn clear(&mut self) {
        self.cache.clear();
        self.by_length.clear();
    }

    fn remember_length(&mut self, partition: usize, length: f64, tables: &Arc<BranchTables>) {
        if self.by_length.len() >= LENGTH_INDEX_CAP {
            self.by_length.clear();
        }
        self.by_length
            .insert((partition, length.to_bits()), Arc::clone(tables));
    }
}

/// Scope of a branch-length update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchScope {
    /// Update the length for a single partition (per-partition mode).
    Partition(usize),
    /// Update the length for all partitions (joint mode or a global reset).
    All,
}

/// Undo record for an SPR applied through the engine (topology + per-partition
/// branch lengths).
#[derive(Debug, Clone)]
pub struct SprApplication {
    /// The topological undo record.
    pub undo: SprUndo,
    saved_lengths: Vec<(BranchId, Vec<f64>)>,
}

/// The master-side state of an analysis.
#[derive(Debug, Clone)]
pub struct MasterData {
    patterns: Arc<PartitionedPatterns>,
    tree: Tree,
    models: ModelSet,
    branch_lengths: BranchLengths,
    validity: ClvValidity,
    tables: TableStore,
}

/// The likelihood engine: master state plus an execution backend.
#[derive(Debug)]
pub struct LikelihoodKernel<E: Executor> {
    data: MasterData,
    executor: E,
    stats: KernelStats,
    telemetry: phylo_telemetry::Telemetry,
}

/// The sequential engine used for correctness tests and the single-threaded
/// baseline measurements.
pub type SequentialKernel = LikelihoodKernel<SequentialExecutor>;

impl SequentialKernel {
    /// Builds a sequential engine for the dataset.
    ///
    /// # Errors
    ///
    /// The same validation as [`LikelihoodKernel::try_new`]:
    /// [`KernelError::TaxaMismatch`], [`KernelError::ModelCountMismatch`] or
    /// [`KernelError::IncompleteTree`] for parts that do not describe the
    /// same dataset.
    pub fn build(
        patterns: Arc<PartitionedPatterns>,
        tree: Tree,
        models: ModelSet,
    ) -> Result<Self, KernelError> {
        let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let executor = SequentialExecutor::new(&patterns, tree.node_capacity(), &categories);
        LikelihoodKernel::try_new(patterns, tree, models, executor)
    }
}

impl<E: Executor> LikelihoodKernel<E> {
    /// Creates an engine from its parts. The executor must have been built for
    /// the same dataset (same partitions and category counts).
    ///
    /// # Errors
    ///
    /// [`KernelError::TaxaMismatch`] if the tree's taxa do not match the
    /// dataset's taxa (same names, same order),
    /// [`KernelError::ModelCountMismatch`] if the model count does not match
    /// the partition count, [`KernelError::IncompleteTree`] if the tree is
    /// not fully resolved.
    pub fn try_new(
        patterns: Arc<PartitionedPatterns>,
        tree: Tree,
        models: ModelSet,
        executor: E,
    ) -> Result<Self, KernelError> {
        if tree.taxa() != &patterns.taxa[..] {
            return Err(KernelError::TaxaMismatch);
        }
        if models.len() != patterns.partition_count() {
            return Err(KernelError::ModelCountMismatch {
                models: models.len(),
                partitions: patterns.partition_count(),
            });
        }
        if !tree.is_complete() {
            return Err(KernelError::IncompleteTree);
        }
        let branch_lengths = BranchLengths::from_tree(&tree, models.len(), models.branch_mode());
        let validity = ClvValidity::new(models.len(), tree.node_capacity());
        let tables = TableStore::new(&patterns);
        Ok(Self {
            data: MasterData {
                patterns,
                tree,
                models,
                branch_lengths,
                validity,
                tables,
            },
            executor,
            stats: KernelStats::default(),
            telemetry: phylo_telemetry::Telemetry::disabled(),
        })
    }

    /// The compiled pattern data.
    pub fn patterns(&self) -> &Arc<PartitionedPatterns> {
        &self.data.patterns
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.data.patterns.partition_count()
    }

    /// Current tree topology.
    pub fn tree(&self) -> &Tree {
        &self.data.tree
    }

    /// Current per-partition models.
    pub fn models(&self) -> &ModelSet {
        &self.data.models
    }

    /// Current branch lengths.
    pub fn branch_lengths(&self) -> &BranchLengths {
        &self.data.branch_lengths
    }

    /// Work counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Synchronization events issued to the executor so far.
    pub fn sync_events(&self) -> u64 {
        self.executor.sync_events()
    }

    /// Read access to the execution backend (e.g. to inspect a live trace).
    pub fn executor(&self) -> &E {
        &self.executor
    }

    /// Access to the execution backend (e.g. to pull a work trace).
    pub fn executor_mut(&mut self) -> &mut E {
        &mut self.executor
    }

    /// Consumes the engine and returns the backend.
    pub fn into_executor(self) -> E {
        self.executor
    }

    /// Attaches a telemetry recorder to the engine **and** its executor: the
    /// engine records `BranchTables` cache hits/builds, the executor brackets
    /// regions. Attaching a disabled handle turns recording back off.
    pub fn set_telemetry(&mut self, telemetry: &phylo_telemetry::Telemetry) {
        self.telemetry = telemetry.clone();
        self.executor.attach_telemetry(telemetry);
    }

    /// The telemetry handle currently attached (disabled by default).
    pub fn telemetry(&self) -> &phylo_telemetry::Telemetry {
        &self.telemetry
    }

    /// A mask with every partition active.
    pub fn full_mask(&self) -> PartitionMask {
        vec![true; self.partition_count()]
    }

    /// A mask with exactly one partition active (the oldPAR access pattern).
    pub fn single_mask(&self, partition: usize) -> PartitionMask {
        let mut m = vec![false; self.partition_count()];
        m[partition] = true;
        m
    }

    /// A reasonable default virtual-root branch: the pendant branch of leaf 0.
    pub fn default_root_branch(&self) -> BranchId {
        self.data.tree.neighbors(0)[0].1
    }

    /// Whether commands carry shared per-branch tables (the default) or take
    /// the per-call reference path.
    pub fn shared_tables(&self) -> bool {
        self.data.tables.enabled
    }

    /// Switches between the shared-table kernels and the per-call reference
    /// path. Results are identical bit for bit; the reference path exists as
    /// the property-tested ground truth and the baseline of the
    /// `kernel_tables` benchmark gate.
    pub fn set_shared_tables(&mut self, enabled: bool) {
        self.data.tables.enabled = enabled;
        if !enabled {
            self.data.tables.clear();
        }
    }

    /// Which inner-loop implementation the shared-table kernels run
    /// ([`KernelDispatch::Blocked`] by default).
    pub fn dispatch(&self) -> KernelDispatch {
        self.data.tables.dispatch
    }

    /// Selects the inner-loop implementation of the shared-table kernels.
    /// The tables themselves are dispatch-independent, so switching never
    /// invalidates the cache. [`KernelDispatch::Scalar`] is the bit-for-bit
    /// reference the differential harness compares against;
    /// [`KernelDispatch::Blocked`] is the fast default (DNA bit-identical,
    /// protein within the documented ≤1e-12 lnL tolerance — see
    /// [`crate::blocked`]). Irrelevant while shared tables are disabled (the
    /// per-call reference path has a single implementation).
    pub fn set_dispatch(&mut self, dispatch: KernelDispatch) {
        self.data.tables.dispatch = dispatch;
    }

    /// Number of `(partition, branch)` table entries currently cached by the
    /// master (diagnostics; exercised by the invalidation tests).
    pub fn cached_branch_tables(&self) -> usize {
        self.data.tables.cache.len()
    }

    /// Number of entries in the cross-branch sharing index — distinct
    /// `(partition, length)` pairs whose tables are available to *any* branch
    /// of the partition at that length (diagnostics; see
    /// [`KernelStats::table_dedup_hits`]).
    pub fn cached_length_tables(&self) -> usize {
        self.data.tables.by_length.len()
    }

    /// The shared tables of one `(partition, branch)`: served from the cache
    /// or computed (and cached) by the master. This is the "computed once,
    /// shared read-only" half of the tentpole: workers never build tables.
    ///
    /// # Errors
    ///
    /// [`KernelError::Op`] with
    /// [`crate::error::OpError::InvalidBranchLength`] when the stored length
    /// of the branch is outside the kernel's domain.
    fn branch_tables(
        &mut self,
        partition: usize,
        branch: BranchId,
    ) -> Result<Arc<BranchTables>, KernelError> {
        if let Some(t) = self.data.tables.cache.get(&(partition, branch)) {
            self.telemetry.table_cache_hit();
            return Ok(Arc::clone(t));
        }
        let length = self.data.branch_lengths.get(partition, branch);
        // Cross-branch sharing: another branch of this partition with the
        // same stored length already built identical tables (same model, same
        // dictionary, same per-category t·r products). Adopt them instead of
        // redoing the O(states³·categories) eigen work.
        if let Some(t) = self
            .data
            .tables
            .by_length
            .get(&(partition, length.to_bits()))
        {
            let tables = Arc::clone(t);
            self.stats.table_dedup_hits += 1;
            self.telemetry.table_cache_hit();
            self.data
                .tables
                .cache
                .insert((partition, branch), Arc::clone(&tables));
            return Ok(tables);
        }
        let tables = Arc::new(BranchTables::build(
            self.data.models.model(partition),
            &self.data.tables.dicts[partition],
            length,
        )?);
        self.stats.table_builds += 1;
        self.telemetry.table_build(partition, branch);
        self.data
            .tables
            .cache
            .insert((partition, branch), Arc::clone(&tables));
        self.data.tables.remember_length(partition, length, &tables);
        Ok(tables)
    }

    /// Assembles the shared-table payload for a `Newview` command.
    fn newview_tables(
        &mut self,
        plans: &[Option<TraversalPlan>],
    ) -> Result<Arc<NewviewTables>, KernelError> {
        let mut per_partition = Vec::with_capacity(plans.len());
        for (pi, plan) in plans.iter().enumerate() {
            let Some(plan) = plan else {
                per_partition.push(None);
                continue;
            };
            let mut steps = Vec::with_capacity(plan.steps.len());
            for step in &plan.steps {
                steps.push(StepTables {
                    left: self.branch_tables(pi, step.left_branch)?,
                    right: self.branch_tables(pi, step.right_branch)?,
                });
            }
            per_partition.push(Some(steps));
        }
        Ok(Arc::new(NewviewTables {
            per_partition,
            dispatch: self.data.tables.dispatch,
        }))
    }

    /// Assembles the shared-table payload for an `Evaluate` command.
    fn edge_tables(
        &mut self,
        root_branch: BranchId,
        mask: &PartitionMask,
    ) -> Result<Arc<EdgeTables>, KernelError> {
        let mut per_partition = Vec::with_capacity(mask.len());
        for (pi, active) in mask.iter().enumerate() {
            if *active {
                per_partition.push(Some(self.branch_tables(pi, root_branch)?));
            } else {
                per_partition.push(None);
            }
        }
        Ok(Arc::new(EdgeTables {
            per_partition,
            dispatch: self.data.tables.dispatch,
        }))
    }

    /// Brings the CLVs needed for an evaluation rooted on `root_branch` up to
    /// date for the masked partitions. Returns the number of CLV updates that
    /// were necessary (0 when everything was already valid — the partial
    /// traversal machinery at work).
    ///
    /// # Errors
    ///
    /// [`KernelError::Exec`] when the execution backend fails; the validity
    /// cache is left untouched in that case, so a recovered executor simply
    /// recomputes.
    pub fn try_update_clvs(
        &mut self,
        root_branch: BranchId,
        mask: &PartitionMask,
    ) -> Result<u64, KernelError> {
        let mut plans: Vec<Option<TraversalPlan>> = vec![None; self.partition_count()];
        let mut updates = 0u64;
        for (pi, active) in mask.iter().enumerate() {
            if !*active {
                continue;
            }
            let validity = &self.data.validity;
            let plan = TraversalPlan::partial(&self.data.tree, root_branch, |node, towards| {
                validity.is_valid(pi, node, towards)
            });
            if !plan.is_empty() {
                updates += plan.len() as u64;
                plans[pi] = Some(plan);
            }
        }
        if updates == 0 {
            return Ok(0);
        }
        let tables = if self.data.tables.enabled {
            Some(self.newview_tables(&plans)?)
        } else {
            None
        };
        let op = KernelOp::Newview {
            plans: plans.clone(),
            tables,
        };
        let ctx = ExecContext {
            tree: &self.data.tree,
            models: &self.data.models,
            branch_lengths: &self.data.branch_lengths,
        };
        self.executor.execute(&op, &ctx)?;
        // Record the new orientations in the validity cache — only after the
        // backend actually performed the updates.
        for (pi, plan) in plans.iter().enumerate() {
            if let Some(plan) = plan {
                for step in &plan.steps {
                    self.data.validity.mark_valid(pi, step.node, step.towards);
                }
            }
        }
        self.stats.newview_node_updates += updates;
        Ok(updates)
    }

    /// Per-partition log likelihoods for an evaluation rooted on
    /// `root_branch`; inactive partitions report 0.0.
    ///
    /// # Errors
    ///
    /// [`KernelError::Exec`] when the execution backend fails.
    pub fn try_log_likelihood_partitions(
        &mut self,
        root_branch: BranchId,
        mask: &PartitionMask,
    ) -> Result<Vec<f64>, KernelError> {
        self.try_update_clvs(root_branch, mask)?;
        let tables = if self.data.tables.enabled {
            Some(self.edge_tables(root_branch, mask)?)
        } else {
            None
        };
        let op = KernelOp::Evaluate {
            root_branch,
            mask: mask.clone(),
            tables,
        };
        let ctx = ExecContext {
            tree: &self.data.tree,
            models: &self.data.models,
            branch_lengths: &self.data.branch_lengths,
        };
        let out = self.executor.execute(&op, &ctx)?;
        // Count the evaluation only once the backend actually performed it,
        // so the work counters stay truthful across failures and retries.
        self.stats.evaluations += 1;
        out.try_into_log_likelihoods()
    }

    /// Total log likelihood over all partitions, evaluated at `root_branch`.
    ///
    /// # Errors
    ///
    /// [`KernelError::Exec`] when the execution backend fails.
    pub fn try_log_likelihood_at(&mut self, root_branch: BranchId) -> Result<f64, KernelError> {
        let mask = self.full_mask();
        Ok(self
            .try_log_likelihood_partitions(root_branch, &mask)?
            .iter()
            .sum())
    }

    /// Total log likelihood at the default root branch.
    ///
    /// # Errors
    ///
    /// [`KernelError::Exec`] when the execution backend fails.
    pub fn try_log_likelihood(&mut self) -> Result<f64, KernelError> {
        self.try_log_likelihood_at(self.default_root_branch())
    }

    /// Sets a branch length and invalidates exactly the CLVs whose subtrees
    /// contain the branch (and the branch's cached shared tables).
    pub fn set_branch_length(&mut self, scope: BranchScope, branch: BranchId, value: f64) {
        let partitions = self.partition_count();
        match (scope, self.data.models.branch_mode()) {
            (BranchScope::Partition(p), BranchLengthMode::PerPartition) => {
                self.data.branch_lengths.set(p, branch, value);
                self.data
                    .validity
                    .branch_length_changed(&self.data.tree, p, branch);
                self.data
                    .tables
                    .invalidate_branch(partitions, Some(p), branch);
            }
            _ => {
                self.data.branch_lengths.set_all(branch, value);
                for p in 0..partitions {
                    self.data
                        .validity
                        .branch_length_changed(&self.data.tree, p, branch);
                }
                self.data.tables.invalidate_branch(partitions, None, branch);
            }
        }
    }

    /// Current branch length as seen by a partition.
    pub fn branch_length(&self, partition: usize, branch: BranchId) -> f64 {
        self.data.branch_lengths.get(partition, branch)
    }

    /// Sets the Γ shape parameter of one partition; every CLV of that
    /// partition becomes invalid.
    pub fn set_alpha(&mut self, partition: usize, alpha: f64) {
        self.data.models.model_mut(partition).set_alpha(alpha);
        self.data.validity.invalidate_partition(partition);
        self.data.tables.invalidate_partition(partition);
    }

    /// Current α of a partition.
    pub fn alpha(&self, partition: usize) -> f64 {
        self.data.models.model(partition).alpha()
    }

    /// Replaces one exchangeability of a partition's substitution model;
    /// every CLV of that partition becomes invalid.
    pub fn set_exchangeability(&mut self, partition: usize, index: usize, value: f64) {
        let updated = self
            .data
            .models
            .model(partition)
            .substitution()
            .with_exchangeability(index, value);
        self.data
            .models
            .model_mut(partition)
            .set_substitution(updated);
        self.data.validity.invalidate_partition(partition);
        self.data.tables.invalidate_partition(partition);
    }

    /// Current exchangeability `index` of a partition.
    pub fn exchangeability(&self, partition: usize, index: usize) -> f64 {
        self.data
            .models
            .model(partition)
            .substitution()
            .exchangeabilities()[index]
    }

    /// Prepares Newton–Raphson optimization of `branch` for the masked
    /// partitions: updates the CLVs at both ends and builds the sum tables.
    ///
    /// # Errors
    ///
    /// [`KernelError::Exec`] when the execution backend fails.
    pub fn try_prepare_branch(
        &mut self,
        branch: BranchId,
        mask: &PartitionMask,
    ) -> Result<(), KernelError> {
        self.try_update_clvs(branch, mask)?;
        let op = KernelOp::Sumtable {
            branch,
            mask: mask.clone(),
        };
        let ctx = ExecContext {
            tree: &self.data.tree,
            models: &self.data.models,
            branch_lengths: &self.data.branch_lengths,
        };
        self.executor.execute(&op, &ctx)?;
        self.stats.sumtable_builds += 1;
        Ok(())
    }

    /// Evaluates the log-likelihood derivatives of the prepared branch at
    /// per-partition candidate lengths (`None` = skip partition, e.g. already
    /// converged).
    ///
    /// # Errors
    ///
    /// [`KernelError::PartitionCountMismatch`] when `lengths` does not cover
    /// every partition, [`KernelError::Op`] with
    /// [`crate::error::OpError::InvalidBranchLength`] for a negative or
    /// non-finite candidate length, [`KernelError::Exec`] when the execution
    /// backend fails.
    pub fn try_branch_derivatives(
        &mut self,
        lengths: &[Option<f64>],
    ) -> Result<Vec<Option<EdgeDerivatives>>, KernelError> {
        if lengths.len() != self.partition_count() {
            return Err(KernelError::PartitionCountMismatch {
                expected: self.partition_count(),
                got: lengths.len(),
            });
        }
        // The kernel-boundary domain check: a Brent/Newton probe must never
        // smuggle a negative or non-finite candidate into the exponentials.
        for t in lengths.iter().flatten() {
            validate_branch_length(*t)?;
        }
        let op = KernelOp::Derivatives {
            lengths: lengths.to_vec(),
        };
        let ctx = ExecContext {
            tree: &self.data.tree,
            models: &self.data.models,
            branch_lengths: &self.data.branch_lengths,
        };
        let out = self.executor.execute(&op, &ctx)?;
        self.stats.derivative_calls += 1;
        out.try_into_derivatives()
    }

    /// Applies an SPR move: topology, per-partition branch lengths and CLV
    /// validity are all updated consistently. The returned record undoes the
    /// move exactly.
    ///
    /// # Errors
    ///
    /// Propagates [`TreeError`] for invalid moves; the engine state is
    /// untouched in that case.
    pub fn apply_spr(&mut self, mv: SprMove) -> Result<SprApplication, TreeError> {
        let undo = spr::apply(&mut self.data.tree, mv)?;
        // Branches whose lengths the move touched: the three branches around
        // the re-inserted node plus the merged branch at the old pruning site.
        let mut snapshot_branches: Vec<BranchId> = undo.inserted_branches.to_vec();
        snapshot_branches.push(undo.merged_branch());
        snapshot_branches.sort_unstable();
        snapshot_branches.dedup();
        let saved_lengths = self.data.branch_lengths.snapshot(&snapshot_branches);

        // Mirror the tree-side length changes in the per-partition storage:
        // the two branches around the pruned node merge, the target branch is
        // split in half — applied row by row so per-partition lengths stay
        // consistent with the topology change.
        self.data.branch_lengths.apply_spr(
            undo.merged_branch(),
            undo.inserted_branches[1],
            undo.inserted_branches[0],
        );

        self.data.validity.topology_changed(
            &self.data.tree,
            &undo.affected_nodes,
            mv.target_branch,
        );
        // The move merged, halved and re-used branch lengths; dropping the
        // whole table cache is cheap next to the CLV recomputation the move
        // forces anyway.
        self.data.tables.clear();
        self.stats.spr_moves += 1;
        Ok(SprApplication {
            undo,
            saved_lengths,
        })
    }

    /// Reverses an SPR previously applied through the engine.
    pub fn undo_spr(&mut self, application: &SprApplication) {
        spr::undo(&mut self.data.tree, &application.undo);
        self.data.branch_lengths.restore(&application.saved_lengths);
        // After undoing, the affected path is stale again. The validity proof
        // requires the retained CLVs to be oriented towards the branch where
        // the subtree was just (re-)attached — after the undo that is the
        // merged branch at the original pruning site, which now connects the
        // pruned node to its old neighbor again.
        self.data.validity.topology_changed(
            &self.data.tree,
            &application.undo.affected_nodes,
            application.undo.merged_branch(),
        );
        self.data.tables.clear();
    }

    /// The three branches incident to the insertion point of an applied SPR
    /// (useful for local branch-length re-optimization).
    pub fn inserted_branches(application: &SprApplication) -> [BranchId; 3] {
        application.undo.inserted_branches
    }

    /// Invalidates every cached CLV and every cached shared branch table
    /// (used by tests, after wholesale model replacement, and after a
    /// reassignment rebuilt the workers).
    pub fn invalidate_all(&mut self) {
        self.data.validity.invalidate_all();
        self.data.tables.clear();
    }

    /// Number of currently valid CLVs of a partition (diagnostics).
    pub fn valid_clvs(&self, partition: usize) -> usize {
        self.data.validity.valid_count(partition)
    }

    /// Nodes adjacent to a branch (helper for local optimization).
    pub fn branch_endpoints(&self, branch: BranchId) -> (NodeId, NodeId) {
        self.data.tree.branch_endpoints(branch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_data::{Alignment, DataType, PartitionSet};
    use phylo_models::BranchLengthMode;
    use phylo_tree::random::random_tree;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_dataset(
        taxa: usize,
        columns: usize,
        partition_len: usize,
        seed: u64,
    ) -> (Arc<PartitionedPatterns>, Tree) {
        // Build a random alignment directly (the real simulator lives in
        // phylo-seqgen, which depends on this crate's siblings, so tests here
        // use simple random columns).
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let names: Vec<String> = (0..taxa).map(|i| format!("t{i}")).collect();
        let rows: Vec<(String, String)> = names
            .iter()
            .map(|n| {
                let seq: String = (0..columns)
                    .map(|_| ['A', 'C', 'G', 'T'][rng.gen_range(0..4usize)])
                    .collect();
                (n.clone(), seq)
            })
            .collect();
        let aln = Alignment::new(rows).unwrap();
        let ps = PartitionSet::equal_length(DataType::Dna, columns, partition_len);
        let pp = Arc::new(PartitionedPatterns::compile(&aln, &ps).unwrap());
        let tree = random_tree(&names, &mut rng);
        (pp, tree)
    }

    fn engine(
        taxa: usize,
        columns: usize,
        partition_len: usize,
        mode: BranchLengthMode,
        seed: u64,
    ) -> SequentialKernel {
        let (pp, tree) = small_dataset(taxa, columns, partition_len, seed);
        let models = ModelSet::default_for(&pp, mode);
        SequentialKernel::build(pp, tree, models).unwrap()
    }

    #[test]
    fn log_likelihood_is_negative_and_finite() {
        let mut k = engine(8, 60, 20, BranchLengthMode::Joint, 1);
        let lnl = k.try_log_likelihood().unwrap();
        assert!(lnl.is_finite());
        assert!(lnl < 0.0);
    }

    #[test]
    fn log_likelihood_invariant_to_root_branch() {
        let mut k = engine(7, 40, 10, BranchLengthMode::PerPartition, 2);
        let branches: Vec<_> = k.tree().branches().collect();
        let reference = k.try_log_likelihood_at(branches[0]).unwrap();
        for &b in &branches[1..] {
            let v = k.try_log_likelihood_at(b).unwrap();
            assert!(
                (v - reference).abs() < 1e-8,
                "branch {b}: {v} vs {reference}"
            );
        }
    }

    #[test]
    fn second_evaluation_reuses_clvs() {
        let mut k = engine(10, 80, 20, BranchLengthMode::Joint, 3);
        let root = k.default_root_branch();
        let first = k.try_update_clvs(root, &k.full_mask()).unwrap();
        assert!(first > 0);
        let second = k.try_update_clvs(root, &k.full_mask()).unwrap();
        assert_eq!(second, 0, "no CLV updates needed when nothing changed");
    }

    #[test]
    fn branch_length_change_invalidates_selectively_and_changes_lnl() {
        let mut k = engine(9, 50, 25, BranchLengthMode::Joint, 4);
        let root = k.default_root_branch();
        let before = k.try_log_likelihood_at(root).unwrap();
        // Changing a branch far from the root invalidates some CLVs but not
        // all of them.
        let victim = *k.tree().internal_branches().last().unwrap();
        k.set_branch_length(BranchScope::All, victim, 1.5);
        let updates = k.try_update_clvs(root, &k.full_mask()).unwrap();
        assert!(
            updates > 0,
            "changing a branch must force some recomputation"
        );
        assert!(
            updates < k.tree().internal_count() as u64 * k.partition_count() as u64,
            "but not a full retraversal of every partition"
        );
        let after = k.try_log_likelihood_at(root).unwrap();
        assert!(
            (after - before).abs() > 1e-6,
            "lnL must respond to branch lengths"
        );
    }

    #[test]
    fn per_partition_branch_lengths_only_affect_their_partition() {
        let mut k = engine(6, 40, 20, BranchLengthMode::PerPartition, 5);
        let root = k.default_root_branch();
        let mask = k.full_mask();
        let before = k.try_log_likelihood_partitions(root, &mask).unwrap();
        let victim = k.tree().internal_branches()[0];
        k.set_branch_length(BranchScope::Partition(1), victim, 2.0);
        let after = k.try_log_likelihood_partitions(root, &mask).unwrap();
        assert!(
            (after[0] - before[0]).abs() < 1e-12,
            "partition 0 must be unaffected"
        );
        assert!(
            (after[1] - before[1]).abs() > 1e-9,
            "partition 1 must change"
        );
    }

    #[test]
    fn alpha_change_invalidates_only_its_partition() {
        let mut k = engine(6, 40, 20, BranchLengthMode::Joint, 6);
        let root = k.default_root_branch();
        let _ = k.try_log_likelihood_at(root).unwrap();
        k.set_alpha(0, 0.3);
        assert_eq!(k.valid_clvs(0), 0);
        assert!(k.valid_clvs(1) > 0);
        let mask = k.full_mask();
        let lnls = k.try_log_likelihood_partitions(root, &mask).unwrap();
        assert!(lnls.iter().all(|l| l.is_finite() && *l < 0.0));
    }

    #[test]
    fn exchangeability_change_moves_likelihood() {
        let mut k = engine(5, 30, 30, BranchLengthMode::Joint, 7);
        let before = k.try_log_likelihood().unwrap();
        k.set_exchangeability(0, 1, 4.0);
        assert!((k.exchangeability(0, 1) - 4.0).abs() < 1e-12);
        let after = k.try_log_likelihood().unwrap();
        assert!((after - before).abs() > 1e-9);
    }

    #[test]
    fn derivatives_agree_with_finite_differences_through_engine() {
        let mut k = engine(8, 60, 30, BranchLengthMode::PerPartition, 8);
        let branch = k.tree().internal_branches()[0];
        let mask = k.full_mask();
        k.try_prepare_branch(branch, &mask).unwrap();
        let t0 = k.branch_length(0, branch);
        let lengths: Vec<Option<f64>> = (0..k.partition_count()).map(|_| Some(t0)).collect();
        let ders = k.try_branch_derivatives(&lengths).unwrap();

        // Finite-difference check against direct evaluation for partition 0.
        let h = 1e-6;
        let lnl = |t: f64, k: &mut SequentialKernel| {
            k.set_branch_length(BranchScope::Partition(0), branch, t);
            let mask = k.single_mask(0);
            k.try_log_likelihood_partitions(branch, &mask).unwrap()[0]
        };
        let up = lnl(t0 + h, &mut k);
        let down = lnl(t0 - h, &mut k);
        let fd1 = (up - down) / (2.0 * h);
        let d = ders[0].unwrap();
        assert!(
            (d.first - fd1).abs() < 1e-3 * (1.0 + fd1.abs()),
            "analytic {} vs finite difference {fd1}",
            d.first
        );
    }

    #[test]
    fn spr_apply_and_undo_restore_likelihood() {
        let mut k = engine(10, 60, 30, BranchLengthMode::PerPartition, 9);
        let before = k.try_log_likelihood().unwrap();
        let tree = k.tree().clone();
        // Find a valid move.
        let mut chosen = None;
        'outer: for p in tree.internal_nodes() {
            for &(s, _) in tree.neighbors(p) {
                let moves = spr::candidate_moves(&tree, p, s, 5);
                if let Some(&mv) = moves.first() {
                    chosen = Some(mv);
                    break 'outer;
                }
            }
        }
        let mv = chosen.expect("a valid SPR move exists");
        let app = k.apply_spr(mv).unwrap();
        let during = k.try_log_likelihood().unwrap();
        assert!(during.is_finite());
        k.undo_spr(&app);
        let after = k.try_log_likelihood().unwrap();
        assert!(
            (after - before).abs() < 1e-6,
            "undo must restore the likelihood: {before} vs {after}"
        );
        assert_eq!(k.stats().spr_moves, 1);
    }

    #[test]
    fn spr_changes_likelihood_on_informative_data() {
        let mut k = engine(12, 80, 40, BranchLengthMode::Joint, 10);
        let before = k.try_log_likelihood().unwrap();
        let tree = k.tree().clone();
        let mut any_changed = false;
        for p in tree.internal_nodes() {
            let (s, _) = tree.neighbors(p)[0];
            for mv in spr::candidate_moves(&tree, p, s, 3).into_iter().take(3) {
                let app = k.apply_spr(mv).unwrap();
                let lnl = k.try_log_likelihood().unwrap();
                if (lnl - before).abs() > 1e-6 {
                    any_changed = true;
                }
                k.undo_spr(&app);
            }
            if any_changed {
                break;
            }
        }
        assert!(
            any_changed,
            "at least one SPR move must change the likelihood"
        );
    }

    #[test]
    fn shared_tables_match_the_per_call_reference_bit_for_bit() {
        let (pp, tree) = small_dataset(8, 80, 20, 21);
        let models = ModelSet::default_for(&pp, BranchLengthMode::PerPartition);
        let mut tabled =
            SequentialKernel::build(Arc::clone(&pp), tree.clone(), models.clone()).unwrap();
        let mut reference = SequentialKernel::build(pp, tree, models).unwrap();
        assert!(tabled.shared_tables(), "tables are the default");
        reference.set_shared_tables(false);

        for b in tabled.tree().branches().collect::<Vec<_>>() {
            let mask = tabled.full_mask();
            let a = tabled.try_log_likelihood_partitions(b, &mask).unwrap();
            let r = reference.try_log_likelihood_partitions(b, &mask).unwrap();
            // Identical arithmetic in identical order: exactly equal, not
            // just within tolerance.
            assert_eq!(a, r, "branch {b}");
        }
        assert!(tabled.stats().table_builds > 0);
        assert_eq!(reference.stats().table_builds, 0);
    }

    #[test]
    fn table_cache_reuses_and_invalidates() {
        let mut k = engine(8, 60, 20, BranchLengthMode::Joint, 22);
        let _ = k.try_log_likelihood().unwrap();
        let after_first = k.stats().table_builds;
        assert!(after_first > 0);
        assert!(k.cached_branch_tables() > 0);

        // A second evaluation at the same state is served from the cache.
        let _ = k.try_log_likelihood().unwrap();
        assert_eq!(k.stats().table_builds, after_first);

        // Changing one branch length drops exactly that branch's entries.
        let cached = k.cached_branch_tables();
        let victim = k.tree().internal_branches()[0];
        k.set_branch_length(BranchScope::All, victim, 0.42);
        assert!(k.cached_branch_tables() < cached);
        let _ = k.try_log_likelihood().unwrap();
        assert!(k.stats().table_builds > after_first);

        // Disabling the tables clears the cache and stops building.
        let builds = k.stats().table_builds;
        k.set_shared_tables(false);
        assert_eq!(k.cached_branch_tables(), 0);
        k.invalidate_all();
        let _ = k.try_log_likelihood().unwrap();
        assert_eq!(k.stats().table_builds, builds);
    }

    #[test]
    fn alpha_change_invalidates_only_its_partitions_tables() {
        let mut k = engine(6, 40, 20, BranchLengthMode::Joint, 23);
        let _ = k.try_log_likelihood().unwrap();
        let total = k.cached_branch_tables();
        assert!(total > 0);
        k.set_alpha(0, 0.5);
        // Partition 0's entries are gone, the other partition's remain.
        let remaining = k.cached_branch_tables();
        assert!(remaining > 0 && remaining < total, "{remaining} of {total}");
    }

    #[test]
    fn spr_clears_the_table_cache() {
        let mut k = engine(10, 60, 30, BranchLengthMode::PerPartition, 24);
        let _ = k.try_log_likelihood().unwrap();
        assert!(k.cached_branch_tables() > 0);
        let tree = k.tree().clone();
        let mut chosen = None;
        'outer: for p in tree.internal_nodes() {
            for &(s, _) in tree.neighbors(p) {
                if let Some(&mv) = spr::candidate_moves(&tree, p, s, 5).first() {
                    chosen = Some(mv);
                    break 'outer;
                }
            }
        }
        let app = k.apply_spr(chosen.unwrap()).unwrap();
        assert_eq!(k.cached_branch_tables(), 0);
        let _ = k.try_log_likelihood().unwrap();
        assert!(k.cached_branch_tables() > 0);
        k.undo_spr(&app);
        assert_eq!(k.cached_branch_tables(), 0);
    }

    #[test]
    fn candidate_branch_lengths_are_validated_at_the_kernel_boundary() {
        use crate::error::OpError;
        let mut k = engine(6, 40, 20, BranchLengthMode::PerPartition, 25);
        let branch = k.tree().internal_branches()[0];
        let mask = k.full_mask();
        k.try_prepare_branch(branch, &mask).unwrap();
        for bad in [-0.25, f64::NAN, f64::INFINITY] {
            let mut lengths: Vec<Option<f64>> = vec![Some(0.1); k.partition_count()];
            lengths[1] = Some(bad);
            let err = k.try_branch_derivatives(&lengths).unwrap_err();
            assert!(
                matches!(err, KernelError::Op(OpError::InvalidBranchLength { .. })),
                "{bad}: {err:?}"
            );
        }
        // The engine is not poisoned by the rejection: valid probes still work.
        let lengths: Vec<Option<f64>> = vec![Some(0.1); k.partition_count()];
        assert!(k.try_branch_derivatives(&lengths).is_ok());
    }

    #[test]
    fn derivatives_without_a_sumtable_fail_as_typed_stale_errors() {
        use crate::error::OpError;
        let mut k = engine(6, 40, 20, BranchLengthMode::Joint, 26);
        // CLVs exist, but no sum table was ever built: the release-mode
        // soundness hole used to be a debug_assert (silent in release).
        let _ = k.try_log_likelihood().unwrap();
        let lengths: Vec<Option<f64>> = vec![Some(0.1); k.partition_count()];
        let err = k.try_branch_derivatives(&lengths).unwrap_err();
        assert!(
            matches!(err, KernelError::Op(OpError::SumtableStale { .. })),
            "{err:?}"
        );
        assert_eq!(err.failed_worker(), None, "not a worker fault");
        // Building the table recovers without any executor surgery.
        let branch = k.tree().internal_branches()[0];
        let mask = k.full_mask();
        k.try_prepare_branch(branch, &mask).unwrap();
        assert!(k.try_branch_derivatives(&lengths).is_ok());
    }

    #[test]
    fn equal_branch_lengths_share_tables_across_branches() {
        let (pp, tree) = small_dataset(8, 80, 20, 27);
        let models = ModelSet::default_for(&pp, BranchLengthMode::Joint);
        let mut k = SequentialKernel::build(Arc::clone(&pp), tree.clone(), models.clone()).unwrap();
        let mut reference = SequentialKernel::build(pp, tree, models).unwrap();
        reference.set_shared_tables(false);

        // Force the post-smoothing shape: every branch at the same length.
        let branches: Vec<BranchId> = k.tree().branches().collect();
        for &b in &branches {
            k.set_branch_length(BranchScope::All, b, 0.137);
            reference.set_branch_length(BranchScope::All, b, 0.137);
        }
        k.invalidate_all();
        let before = k.stats();
        let mask = k.full_mask();
        let root = k.default_root_branch();
        let a = k.try_log_likelihood_partitions(root, &mask).unwrap();
        let r = reference
            .try_log_likelihood_partitions(root, &mask)
            .unwrap();
        assert_eq!(a, r, "shared tables must stay bit-identical");

        let stats = k.stats();
        // One eigen build per (partition, distinct length) — everything else
        // is served by cross-branch sharing.
        assert_eq!(
            stats.table_builds - before.table_builds,
            k.partition_count() as u64,
            "equal lengths must collapse to one build per partition"
        );
        assert!(
            stats.table_dedup_hits > before.table_dedup_hits,
            "sharing across branches must be counted"
        );
        assert_eq!(k.cached_length_tables(), k.partition_count());
    }

    #[test]
    fn table_dedup_never_serves_stale_tables_after_a_model_change() {
        let (pp, tree) = small_dataset(7, 60, 30, 28);
        let models = ModelSet::default_for(&pp, BranchLengthMode::Joint);
        let mut k = SequentialKernel::build(Arc::clone(&pp), tree.clone(), models.clone()).unwrap();
        let mut reference = SequentialKernel::build(pp, tree, models).unwrap();
        reference.set_shared_tables(false);
        for b in k.tree().branches().collect::<Vec<_>>() {
            k.set_branch_length(BranchScope::All, b, 0.2);
            reference.set_branch_length(BranchScope::All, b, 0.2);
        }
        let _ = k.try_log_likelihood().unwrap();
        assert!(k.cached_length_tables() > 0);

        // A model change must purge the partition's length-keyed entries too:
        // the old tables were built under the old α.
        k.set_alpha(0, 0.55);
        reference.set_alpha(0, 0.55);
        let mask = k.full_mask();
        let root = k.default_root_branch();
        let a = k.try_log_likelihood_partitions(root, &mask).unwrap();
        let r = reference
            .try_log_likelihood_partitions(root, &mask)
            .unwrap();
        assert_eq!(a, r, "dedup after a model change must rebuild, not reuse");

        // Disabling shared tables drops the sharing index with the rest.
        k.set_shared_tables(false);
        assert_eq!(k.cached_length_tables(), 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut k = engine(6, 40, 20, BranchLengthMode::Joint, 11);
        let _ = k.try_log_likelihood().unwrap();
        let branch = k.tree().internal_branches()[0];
        let mask = k.full_mask();
        k.try_prepare_branch(branch, &mask).unwrap();
        let lengths: Vec<Option<f64>> = (0..k.partition_count()).map(|_| Some(0.1)).collect();
        let _ = k.try_branch_derivatives(&lengths).unwrap();
        let stats = k.stats();
        assert!(stats.newview_node_updates > 0);
        assert_eq!(stats.evaluations, 1);
        assert_eq!(stats.sumtable_builds, 1);
        assert_eq!(stats.derivative_calls, 1);
        assert!(k.sync_events() >= 3);
    }
}
