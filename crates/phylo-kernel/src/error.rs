//! The unified error type of the likelihood engine.
//!
//! Everything the engine can fail on — a parallel backend losing a worker, a
//! malformed tree operation, a reduction of mismatched output shapes, or an
//! engine assembled from parts that do not describe the same dataset — is a
//! [`KernelError`]. Drivers propagate it as a value instead of aborting the
//! analysis, which is what lets them *recover* from a worker death via the
//! reassignment path (see `phylo_sched::Reassignable`).

use phylo_tree::TreeError;

use crate::executor::ExecError;

/// Why a slice-level kernel primitive refused to run.
///
/// These are the *release-mode* guards of the numerical core: buffer shapes
/// and branch-length domains used to be checked with `debug_assert!` only, so
/// a release build would silently index mismatched CLV/scale/sumtable buffers
/// (e.g. a sum table left over from before a mid-round pattern migration
/// changed the local pattern count) or exponentiate a non-finite branch
/// length into NaN likelihoods. They now fail as typed values on every build
/// profile. An [`OpError`] is deterministic master-state misuse, not a worker
/// fault: executors surface it without poisoning themselves, and
/// [`KernelError::failed_worker`] reports `None` so drivers do not try to
/// "recover" by rebuilding healthy workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpError {
    /// A slice and its buffers disagree about the local pattern count (the
    /// mid-run migration hazard: stale buffers paired with migrated slices).
    SliceShape {
        /// Partition the slice belongs to.
        partition: usize,
        /// Local patterns the buffers were allocated for.
        buffer_patterns: usize,
        /// Local patterns the slice actually owns.
        slice_patterns: usize,
    },
    /// A CLV handed back to the buffer store has the wrong length.
    ClvShape {
        /// Node the CLV belongs to.
        node: usize,
        /// Expected length (`patterns × categories × states`).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A scale-counter vector handed back to the buffer store has the wrong
    /// length.
    ScaleShape {
        /// Node the counters belong to.
        node: usize,
        /// Expected length (local pattern count).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// The branch sum table does not match the slice shape — it is missing,
    /// or stale from before a reassignment changed the local pattern count.
    /// Rebuild it with `build_sumtable` before asking for derivatives.
    SumtableStale {
        /// Expected length (`patterns × categories × states`).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A branch length outside the kernel's domain (negative, NaN or
    /// infinite) reached a transition-matrix computation.
    InvalidBranchLength {
        /// The offending length.
        value: f64,
    },
    /// A shared-table payload does not cover the op it was attached to (e.g.
    /// a table list shorter than the traversal plan it should serve).
    TableShape {
        /// Partition whose tables are malformed.
        partition: usize,
        /// Entries the op needs.
        expected: usize,
        /// Entries the payload carries.
        got: usize,
    },
    /// A shared table's dimensions do not match the slice it was applied to
    /// (e.g. tables built from another partition's model).
    TableDims {
        /// Partition the table was applied to.
        partition: usize,
        /// States × categories of the table.
        table: (usize, usize),
        /// States × categories of the slice's buffers.
        buffers: (usize, usize),
    },
    /// A kernel step asked for the CLV of an internal node that has not been
    /// computed yet — the traversal plan visited a parent before its child
    /// (or the buffers were cleared between the two visits).
    ClvMissing {
        /// The internal node whose CLV is absent.
        node: usize,
    },
    /// A kernel step asked for the scale counters of an internal node that
    /// has no CLV entry; same traversal-order hazard as [`OpError::ClvMissing`].
    ScaleMissing {
        /// The internal node whose scale counters are absent.
        node: usize,
    },
    /// A slice's buffers were allocated for a different alphabet or category
    /// count than the model the op runs under (buffers recycled across
    /// partitions without reallocation).
    BufferDims {
        /// Partition the op ran on.
        partition: usize,
        /// States × categories the op's model expects.
        expected: (usize, usize),
        /// States × categories the buffers were allocated for.
        got: (usize, usize),
    },
    /// A tip-lookup dictionary built for a different alphabet was handed to a
    /// table builder (dictionary states ≠ model states).
    DictStates {
        /// States of the model the tables are being built for.
        model: usize,
        /// States the dictionary was compiled for.
        dict: usize,
    },
    /// Two per-worker outputs of *different kinds* reached a reduction — an
    /// executor-implementation bug (e.g. one worker answered a Newview with
    /// log likelihoods), surfaced as a value instead of a master panic.
    ReduceMismatch {
        /// Output kind of the left (accumulated) operand.
        left: &'static str,
        /// Output kind of the right (incoming) operand.
        right: &'static str,
    },
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SliceShape {
                partition,
                buffer_patterns,
                slice_patterns,
            } => write!(
                f,
                "partition {partition}: buffers sized for {buffer_patterns} local patterns \
                 but the slice owns {slice_patterns} (stale buffers after a migration?)"
            ),
            Self::ClvShape {
                node,
                expected,
                got,
            } => write!(
                f,
                "CLV of node {node} has length {got}, expected {expected}"
            ),
            Self::ScaleShape {
                node,
                expected,
                got,
            } => write!(
                f,
                "scale counters of node {node} have length {got}, expected {expected}"
            ),
            Self::SumtableStale { expected, got } => write!(
                f,
                "branch sum table has length {got}, expected {expected}; \
                 it is missing or stale (rebuild it with build_sumtable)"
            ),
            Self::InvalidBranchLength { value } => write!(
                f,
                "branch length {value} is outside the kernel's domain \
                 (must be finite and non-negative)"
            ),
            Self::TableShape {
                partition,
                expected,
                got,
            } => write!(
                f,
                "shared branch tables of partition {partition} carry {got} entries \
                 but the command needs {expected}"
            ),
            Self::TableDims {
                partition,
                table,
                buffers,
            } => write!(
                f,
                "shared branch tables applied to partition {partition} have \
                 {}×{} states×categories but the buffers expect {}×{} \
                 (tables built from another partition's model?)",
                table.0, table.1, buffers.0, buffers.1
            ),
            Self::ClvMissing { node } => write!(
                f,
                "CLV of internal node {node} has not been computed \
                 (traversal order violated, or buffers cleared mid-plan)"
            ),
            Self::ScaleMissing { node } => write!(
                f,
                "scale counters of internal node {node} are missing \
                 (traversal order violated, or buffers cleared mid-plan)"
            ),
            Self::BufferDims {
                partition,
                expected,
                got,
            } => write!(
                f,
                "partition {partition}: buffers allocated for {}×{} \
                 states×categories but the op's model expects {}×{}",
                got.0, got.1, expected.0, expected.1
            ),
            Self::DictStates { model, dict } => write!(
                f,
                "tip-lookup dictionary compiled for {dict} states handed to a \
                 table builder for a {model}-state model"
            ),
            Self::ReduceMismatch { left, right } => write!(
                f,
                "cannot reduce outputs of different kinds: {left} vs {right} \
                 (executor-implementation bug)"
            ),
        }
    }
}

impl std::error::Error for OpError {}

/// Why a likelihood-engine operation could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// The execution backend failed (a worker died, or the executor is
    /// poisoned by an earlier death).
    Exec(ExecError),
    /// A slice-level kernel primitive rejected its inputs (mismatched buffer
    /// shapes, a stale sum table, an out-of-domain branch length) — the
    /// release-mode soundness guards of the numerical core, surfaced as
    /// values whether they trip on the master (while building shared tables
    /// or validating candidate lengths) or inside a worker.
    Op(OpError),
    /// A tree operation failed (invalid SPR move, malformed topology).
    Tree(TreeError),
    /// A command's reduced output was not of the kind the caller expected —
    /// an executor-implementation bug surfaced as a value.
    OutputMismatch {
        /// The output kind the caller asked for.
        expected: &'static str,
        /// The output kind the executor actually produced.
        got: &'static str,
    },
    /// The tree's taxa do not match the dataset's taxa (same names, same
    /// order required).
    TaxaMismatch,
    /// The model set covers a different number of partitions than the
    /// dataset.
    ModelCountMismatch {
        /// Models supplied.
        models: usize,
        /// Partitions in the dataset.
        partitions: usize,
    },
    /// The tree is not a fully resolved unrooted binary tree.
    IncompleteTree,
    /// A per-partition argument vector has the wrong length.
    PartitionCountMismatch {
        /// Partitions in the dataset.
        expected: usize,
        /// Entries supplied.
        got: usize,
    },
}

impl KernelError {
    /// The worker index involved when the error is a backend failure
    /// ([`ExecError::WorkerDied`] or [`ExecError::Poisoned`]); `None` for
    /// every other error. Drivers use this to decide whether a failed round
    /// is recoverable by rebuilding the workers.
    pub fn failed_worker(&self) -> Option<usize> {
        match self {
            KernelError::Exec(ExecError::WorkerDied { worker })
            | KernelError::Exec(ExecError::Poisoned { worker }) => Some(*worker),
            _ => None,
        }
    }
}

impl From<ExecError> for KernelError {
    fn from(e: ExecError) -> Self {
        match e {
            // A kernel-primitive rejection is deterministic master-state
            // misuse, not a backend failure: flatten it so drivers see one
            // `KernelError::Op` regardless of which side of the channel the
            // guard tripped on.
            ExecError::Op(op) => KernelError::Op(op),
            other => KernelError::Exec(other),
        }
    }
}

impl From<OpError> for KernelError {
    fn from(e: OpError) -> Self {
        KernelError::Op(e)
    }
}

impl From<TreeError> for KernelError {
    fn from(e: TreeError) -> Self {
        KernelError::Tree(e)
    }
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Exec(e) => write!(f, "execution backend failed: {e}"),
            Self::Op(e) => write!(f, "kernel primitive rejected its inputs: {e}"),
            Self::Tree(e) => write!(f, "tree operation failed: {e}"),
            Self::OutputMismatch { expected, got } => {
                write!(f, "expected a {expected} output, got {got}")
            }
            Self::TaxaMismatch => {
                write!(f, "tree taxa must match alignment taxa (same order)")
            }
            Self::ModelCountMismatch { models, partitions } => write!(
                f,
                "one model per partition required: {models} models for {partitions} partitions"
            ),
            Self::IncompleteTree => write!(f, "the tree must be fully resolved"),
            Self::PartitionCountMismatch { expected, got } => write!(
                f,
                "per-partition argument covers {got} partitions but the dataset has {expected}"
            ),
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Exec(e) => Some(e),
            Self::Op(e) => Some(e),
            Self::Tree(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_parameters() {
        let e = KernelError::from(ExecError::WorkerDied { worker: 3 });
        assert!(e.to_string().contains('3'), "{e}");
        assert_eq!(e.failed_worker(), Some(3));
        let e = KernelError::from(ExecError::Poisoned { worker: 1 });
        assert_eq!(e.failed_worker(), Some(1));
        let e = KernelError::OutputMismatch {
            expected: "log-likelihood",
            got: "derivative",
        };
        assert!(e.to_string().contains("log-likelihood"), "{e}");
        assert_eq!(e.failed_worker(), None);
        let e = KernelError::ModelCountMismatch {
            models: 2,
            partitions: 5,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('5'));
        assert!(!KernelError::TaxaMismatch.to_string().is_empty());
        assert!(!KernelError::IncompleteTree.to_string().is_empty());
        let e = KernelError::PartitionCountMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains('4'), "{e}");
    }

    #[test]
    fn tree_errors_convert() {
        let e = KernelError::from(TreeError::Invalid("bad".into()));
        assert!(matches!(e, KernelError::Tree(_)));
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn op_errors_flatten_and_are_not_worker_failures() {
        let op = OpError::SumtableStale {
            expected: 96,
            got: 0,
        };
        // Worker-side (through ExecError) and master-side (direct) paths
        // converge on the same flattened variant.
        let via_exec = KernelError::from(ExecError::Op(op));
        let direct = KernelError::from(op);
        assert_eq!(via_exec, direct);
        assert!(matches!(via_exec, KernelError::Op(_)));
        // Deterministic misuse: never recoverable by rebuilding workers.
        assert_eq!(via_exec.failed_worker(), None);
        assert!(via_exec.to_string().contains("sum table"));
    }

    #[test]
    fn op_errors_render_their_parameters() {
        let cases: Vec<(OpError, &str)> = vec![
            (
                OpError::SliceShape {
                    partition: 2,
                    buffer_patterns: 10,
                    slice_patterns: 7,
                },
                "partition 2",
            ),
            (
                OpError::ClvShape {
                    node: 5,
                    expected: 48,
                    got: 12,
                },
                "node 5",
            ),
            (
                OpError::ScaleShape {
                    node: 9,
                    expected: 3,
                    got: 4,
                },
                "node 9",
            ),
            (OpError::InvalidBranchLength { value: -0.5 }, "-0.5"),
            (OpError::ClvMissing { node: 11 }, "node 11"),
            (OpError::ScaleMissing { node: 12 }, "node 12"),
            (
                OpError::BufferDims {
                    partition: 3,
                    expected: (20, 4),
                    got: (4, 4),
                },
                "partition 3",
            ),
            (OpError::DictStates { model: 20, dict: 4 }, "20"),
            (
                OpError::ReduceMismatch {
                    left: "none",
                    right: "log-likelihoods",
                },
                "log-likelihoods",
            ),
            (
                OpError::TableShape {
                    partition: 1,
                    expected: 4,
                    got: 2,
                },
                "partition 1",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
