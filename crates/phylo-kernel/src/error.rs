//! The unified error type of the likelihood engine.
//!
//! Everything the engine can fail on — a parallel backend losing a worker, a
//! malformed tree operation, a reduction of mismatched output shapes, or an
//! engine assembled from parts that do not describe the same dataset — is a
//! [`KernelError`]. Drivers propagate it as a value instead of aborting the
//! analysis, which is what lets them *recover* from a worker death via the
//! reassignment path (see `phylo_sched::Reassignable`).

use phylo_tree::TreeError;

use crate::executor::ExecError;

/// Why a likelihood-engine operation could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// The execution backend failed (a worker died, or the executor is
    /// poisoned by an earlier death).
    Exec(ExecError),
    /// A tree operation failed (invalid SPR move, malformed topology).
    Tree(TreeError),
    /// A command's reduced output was not of the kind the caller expected —
    /// an executor-implementation bug surfaced as a value.
    OutputMismatch {
        /// The output kind the caller asked for.
        expected: &'static str,
        /// The output kind the executor actually produced.
        got: &'static str,
    },
    /// The tree's taxa do not match the dataset's taxa (same names, same
    /// order required).
    TaxaMismatch,
    /// The model set covers a different number of partitions than the
    /// dataset.
    ModelCountMismatch {
        /// Models supplied.
        models: usize,
        /// Partitions in the dataset.
        partitions: usize,
    },
    /// The tree is not a fully resolved unrooted binary tree.
    IncompleteTree,
    /// A per-partition argument vector has the wrong length.
    PartitionCountMismatch {
        /// Partitions in the dataset.
        expected: usize,
        /// Entries supplied.
        got: usize,
    },
}

impl KernelError {
    /// The worker index involved when the error is a backend failure
    /// ([`ExecError::WorkerDied`] or [`ExecError::Poisoned`]); `None` for
    /// every other error. Drivers use this to decide whether a failed round
    /// is recoverable by rebuilding the workers.
    pub fn failed_worker(&self) -> Option<usize> {
        match self {
            KernelError::Exec(ExecError::WorkerDied { worker })
            | KernelError::Exec(ExecError::Poisoned { worker }) => Some(*worker),
            _ => None,
        }
    }
}

impl From<ExecError> for KernelError {
    fn from(e: ExecError) -> Self {
        KernelError::Exec(e)
    }
}

impl From<TreeError> for KernelError {
    fn from(e: TreeError) -> Self {
        KernelError::Tree(e)
    }
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Exec(e) => write!(f, "execution backend failed: {e}"),
            Self::Tree(e) => write!(f, "tree operation failed: {e}"),
            Self::OutputMismatch { expected, got } => {
                write!(f, "expected a {expected} output, got {got}")
            }
            Self::TaxaMismatch => {
                write!(f, "tree taxa must match alignment taxa (same order)")
            }
            Self::ModelCountMismatch { models, partitions } => write!(
                f,
                "one model per partition required: {models} models for {partitions} partitions"
            ),
            Self::IncompleteTree => write!(f, "the tree must be fully resolved"),
            Self::PartitionCountMismatch { expected, got } => write!(
                f,
                "per-partition argument covers {got} partitions but the dataset has {expected}"
            ),
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Exec(e) => Some(e),
            Self::Tree(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_parameters() {
        let e = KernelError::from(ExecError::WorkerDied { worker: 3 });
        assert!(e.to_string().contains('3'), "{e}");
        assert_eq!(e.failed_worker(), Some(3));
        let e = KernelError::from(ExecError::Poisoned { worker: 1 });
        assert_eq!(e.failed_worker(), Some(1));
        let e = KernelError::OutputMismatch {
            expected: "log-likelihood",
            got: "derivative",
        };
        assert!(e.to_string().contains("log-likelihood"), "{e}");
        assert_eq!(e.failed_worker(), None);
        let e = KernelError::ModelCountMismatch {
            models: 2,
            partitions: 5,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('5'));
        assert!(!KernelError::TaxaMismatch.to_string().is_empty());
        assert!(!KernelError::IncompleteTree.to_string().is_empty());
        let e = KernelError::PartitionCountMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains('4'), "{e}");
    }

    #[test]
    fn tree_errors_convert() {
        let e = KernelError::from(TreeError::Invalid("bad".into()));
        assert!(matches!(e, KernelError::Tree(_)));
        assert!(e.to_string().contains("bad"));
    }
}
