//! The executor abstraction: the master/worker command protocol.
//!
//! The Pthreads parallelization of the PLK works by having the master thread
//! broadcast *commands* (update these CLVs, evaluate at this branch, compute
//! these derivatives) that every worker executes on its own share of the
//! alignment patterns, followed by a barrier and a reduction. The
//! [`Executor`] trait captures exactly that protocol; each call to
//! [`Executor::execute`] corresponds to one parallel region and therefore one
//! synchronization event.
//!
//! Three implementations exist:
//!
//! * [`SequentialExecutor`] (here) — a single worker owning all patterns; the
//!   reference for correctness and the sequential baseline of the paper's
//!   figures,
//! * `ThreadedExecutor` (in `phylo-parallel`) — real worker threads,
//! * `TracingExecutor` (in `phylo-parallel`) — virtual workers that execute
//!   the commands sequentially while recording the per-worker work of every
//!   region, which feeds the platform performance model.

use std::sync::Arc;

use phylo_models::ModelSet;
use phylo_tree::{BranchId, TraversalPlan, Tree};

use crate::blocked;
use crate::branch_lengths::BranchLengths;
use crate::error::{KernelError, OpError};
use crate::ops::{self, EdgeDerivatives};
use crate::slice::WorkerSlices;
use crate::tables::{EdgeTables, KernelDispatch, NewviewTables};

/// Which partitions participate in a command. `mask[p] == true` means
/// partition `p` is active. The `newPAR` scheme keeps many partitions active
/// per command; the `oldPAR` scheme activates exactly one at a time.
pub type PartitionMask = Vec<bool>;

/// A command broadcast by the master to all workers.
///
/// The CLV-touching commands optionally carry **shared branch tables**
/// (master-precomputed transition matrices + tip lookup rows, see
/// [`crate::tables`]) inside an `Arc`: every worker then reads the same
/// read-only tables instead of redoing the O(states³·categories) eigen work
/// per call. `None` selects the per-call reference path. The payload also
/// carries a [`KernelDispatch`] selecting between the scalar tabled loops
/// (bit-for-bit with the per-call reference) and the cache-blocked
/// width-specialized loops (see [`crate::blocked`] for the tolerance
/// contract).
#[derive(Debug, Clone)]
pub enum KernelOp {
    /// Recompute CLVs following a per-partition traversal plan (`None` means
    /// the partition has nothing to update in this region).
    Newview {
        /// One optional plan per partition.
        plans: Vec<Option<TraversalPlan>>,
        /// Shared per-step branch tables (aligned with the plans), or `None`
        /// for the per-call reference path.
        tables: Option<Arc<NewviewTables>>,
    },
    /// Evaluate the per-partition log likelihood at a virtual root branch.
    Evaluate {
        /// Branch carrying the virtual root.
        root_branch: BranchId,
        /// Active partitions.
        mask: PartitionMask,
        /// Shared virtual-root branch tables per partition, or `None` for
        /// the per-call reference path.
        tables: Option<Arc<EdgeTables>>,
    },
    /// Build the branch sum tables used by Newton–Raphson.
    Sumtable {
        /// The branch being optimized.
        branch: BranchId,
        /// Active partitions.
        mask: PartitionMask,
    },
    /// Evaluate log-likelihood derivatives at per-partition candidate branch
    /// lengths (`None` = partition does not participate, e.g. it has already
    /// converged — this is the `newPAR` convergence mask in action).
    Derivatives {
        /// Candidate branch length per partition.
        lengths: Vec<Option<f64>>,
    },
}

impl KernelOp {
    /// Human-readable label of the op kind (diagnostics, traces).
    pub fn kind(&self) -> crate::cost::OpKind {
        match self {
            KernelOp::Newview { .. } => crate::cost::OpKind::Newview,
            KernelOp::Evaluate { .. } => crate::cost::OpKind::Evaluate,
            KernelOp::Sumtable { .. } => crate::cost::OpKind::Sumtable,
            KernelOp::Derivatives { .. } => crate::cost::OpKind::Derivatives,
        }
    }

    /// Which partitions this command touches — the *convergence mask* of the
    /// region. For `Derivatives` this is the newPAR convergence vector
    /// (converged partitions carry `None` and do no work); for `Newview` a
    /// partition without a traversal plan is inactive; `Evaluate`/`Sumtable`
    /// carry an explicit mask. Executors record this shape per region so the
    /// mask-aware rescheduler can see how the live pattern set shrinks.
    pub fn active_partitions(&self) -> PartitionMask {
        match self {
            KernelOp::Newview { plans, .. } => plans.iter().map(Option::is_some).collect(),
            KernelOp::Evaluate { mask, .. } | KernelOp::Sumtable { mask, .. } => mask.clone(),
            KernelOp::Derivatives { lengths } => lengths.iter().map(Option::is_some).collect(),
        }
    }
}

/// Number of local patterns a worker actually touches in one region — the
/// *live* pattern count under the command's convergence mask, weighted by
/// traversal length for `newview` (the same proportionality the analytic cost
/// model uses). Patterns of converged/inactive partitions are skipped by
/// [`execute_on_worker`] and therefore not counted.
pub fn active_local_patterns(worker: &WorkerSlices, op: &KernelOp) -> usize {
    match op {
        KernelOp::Newview { plans, .. } => plans
            .iter()
            .enumerate()
            .filter_map(|(pi, plan)| {
                plan.as_ref()
                    .map(|p| worker.slices[pi].pattern_count() * p.len())
            })
            .sum(),
        KernelOp::Evaluate { mask, .. } | KernelOp::Sumtable { mask, .. } => mask
            .iter()
            .enumerate()
            .filter(|&(_, active)| *active)
            .map(|(pi, _)| worker.slices[pi].pattern_count())
            .sum(),
        KernelOp::Derivatives { lengths } => lengths
            .iter()
            .enumerate()
            .filter(|&(_, l)| l.is_some())
            .map(|(pi, _)| worker.slices[pi].pattern_count())
            .sum(),
    }
}

/// Read-only view of the master state a command is executed against.
#[derive(Debug, Clone, Copy)]
pub struct ExecContext<'a> {
    /// Current tree topology.
    pub tree: &'a Tree,
    /// Per-partition models.
    pub models: &'a ModelSet,
    /// Joint or per-partition branch lengths.
    pub branch_lengths: &'a BranchLengths,
}

/// Reduced result of a command.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutput {
    /// Commands without a reduction (newview, sumtable).
    None,
    /// Per-partition log likelihoods (0.0 for inactive partitions).
    LogLikelihoods(Vec<f64>),
    /// Per-partition derivative bundles (`None` for inactive partitions).
    Derivatives(Vec<Option<EdgeDerivatives>>),
}

impl OpOutput {
    /// Short label of the output kind (diagnostics, error messages).
    pub fn kind_name(&self) -> &'static str {
        match self {
            OpOutput::None => "empty",
            OpOutput::LogLikelihoods(_) => "log-likelihood",
            OpOutput::Derivatives(_) => "derivative",
        }
    }

    /// Unwraps per-partition log likelihoods.
    ///
    /// # Errors
    ///
    /// [`KernelError::OutputMismatch`] if the output is of a different kind
    /// (an executor-implementation bug, reported as a value instead of a
    /// panic).
    pub fn try_into_log_likelihoods(self) -> Result<Vec<f64>, KernelError> {
        match self {
            OpOutput::LogLikelihoods(v) => Ok(v),
            other => Err(KernelError::OutputMismatch {
                expected: "log-likelihood",
                got: other.kind_name(),
            }),
        }
    }

    /// Unwraps per-partition derivatives.
    ///
    /// # Errors
    ///
    /// [`KernelError::OutputMismatch`] if the output is of a different kind.
    pub fn try_into_derivatives(self) -> Result<Vec<Option<EdgeDerivatives>>, KernelError> {
        match self {
            OpOutput::Derivatives(v) => Ok(v),
            other => Err(KernelError::OutputMismatch {
                expected: "derivative",
                got: other.kind_name(),
            }),
        }
    }
}

/// Why a parallel execution backend could not complete a command.
///
/// The historical behaviour was an opaque
/// `expect("worker thread terminated unexpectedly")` that killed the master
/// thread; backends now surface the failure as a value so callers can tear
/// down cleanly (or rebuild the workers via reassignment).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A worker thread panicked (or its channel disconnected) while executing
    /// the current command.
    WorkerDied {
        /// Index of the dead worker.
        worker: usize,
    },
    /// The executor was poisoned by an earlier worker death; no further
    /// commands are accepted until the workers are rebuilt.
    Poisoned {
        /// Index of the worker whose death poisoned the executor.
        worker: usize,
    },
    /// A kernel primitive rejected the command's inputs (mismatched buffer
    /// shapes, a stale sum table, an out-of-domain branch length). Unlike a
    /// worker death this is deterministic master-state misuse: the workers
    /// stay healthy, the executor is **not** poisoned, and
    /// `KernelError::from` flattens it to `KernelError::Op`.
    Op(OpError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WorkerDied { worker } => {
                write!(f, "worker thread {worker} died while executing a command")
            }
            Self::Poisoned { worker } => write!(
                f,
                "executor is poisoned by the earlier death of worker {worker}"
            ),
            Self::Op(e) => write!(f, "kernel primitive rejected the command: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<OpError> for ExecError {
    fn from(e: OpError) -> Self {
        ExecError::Op(e)
    }
}

/// The master/worker execution backend.
///
/// `execute` is fallible by design: a parallel backend can lose a worker
/// mid-command, and the master must survive its workers. Backends without a
/// failure mode (the sequential and virtual executors) simply always return
/// `Ok`.
pub trait Executor {
    /// Number of workers the patterns are distributed over.
    fn worker_count(&self) -> usize;

    /// Executes one command (one parallel region, one synchronization event)
    /// and returns the reduced result.
    ///
    /// # Errors
    ///
    /// [`ExecError::WorkerDied`] when a worker fails during this command;
    /// [`ExecError::Poisoned`] when the executor refuses further commands
    /// after an earlier death (rebuild the workers — e.g. via
    /// `phylo_sched::Reassignable::reassign` — to recover).
    fn execute(&mut self, op: &KernelOp, ctx: &ExecContext<'_>) -> Result<OpOutput, ExecError>;

    /// Number of synchronization events executed so far.
    fn sync_events(&self) -> u64;

    /// Attaches a telemetry recorder: the executor keeps a clone of the
    /// (cheap, shared) handle and brackets every region with
    /// start/end events plus per-worker timings. The default is a no-op so
    /// backends without instrumentation stay telemetry-free; attaching a
    /// disabled handle is equivalent to never calling this.
    fn attach_telemetry(&mut self, _telemetry: &phylo_telemetry::Telemetry) {}
}

/// Executes one command against a single worker's slices. This is the shared
/// building block: the sequential executor calls it once, the threaded and
/// tracing executors call it per worker.
///
/// Commands carrying shared [`crate::tables::BranchTables`] take the
/// table-based kernel path; commands without take the per-call reference
/// path. Results are identical.
///
/// # Errors
///
/// [`OpError`] when a kernel primitive rejects its inputs (mismatched buffer
/// shapes, a stale sum table, an out-of-domain branch length, a table
/// payload that does not cover the command).
pub fn execute_on_worker(
    worker: &mut WorkerSlices,
    op: &KernelOp,
    ctx: &ExecContext<'_>,
) -> Result<OpOutput, OpError> {
    let partitions = worker.slices.len();
    match op {
        KernelOp::Newview { plans, tables } => {
            for (pi, plan) in plans.iter().enumerate() {
                let Some(plan) = plan else { continue };
                let slice = &worker.slices[pi];
                if slice.pattern_count() == 0 {
                    continue;
                }
                let step_tables = match tables.as_deref() {
                    Some(t) => {
                        // `.get` guards payloads shorter than the partition
                        // count: a malformed payload must be a typed error,
                        // not an index panic that kills (and poisons) a
                        // healthy worker.
                        let steps = t
                            .per_partition
                            .get(pi)
                            .and_then(|s| s.as_deref())
                            .unwrap_or(&[]);
                        if steps.len() != plan.steps.len() {
                            return Err(OpError::TableShape {
                                partition: pi,
                                expected: plan.steps.len(),
                                got: steps.len(),
                            });
                        }
                        Some((steps, t.dispatch))
                    }
                    None => None,
                };
                let model = ctx.models.model(pi);
                for (si, step) in plan.steps.iter().enumerate() {
                    match step_tables {
                        Some((steps, KernelDispatch::Blocked)) => {
                            blocked::newview_step_blocked(
                                slice,
                                &mut worker.buffers[pi],
                                step,
                                &steps[si],
                            )?;
                        }
                        Some((steps, KernelDispatch::Scalar)) => {
                            ops::newview_step_tabled(
                                slice,
                                &mut worker.buffers[pi],
                                step,
                                &steps[si],
                            )?;
                        }
                        None => {
                            let left_len = ctx.branch_lengths.get(pi, step.left_branch);
                            let right_len = ctx.branch_lengths.get(pi, step.right_branch);
                            ops::newview_step(
                                slice,
                                &mut worker.buffers[pi],
                                model,
                                step,
                                left_len,
                                right_len,
                            )?;
                        }
                    }
                }
                if let Some((_, dispatch)) = step_tables {
                    worker.buffers[pi].count_dispatch_patterns(
                        dispatch,
                        (slice.pattern_count() * plan.steps.len()) as u64,
                    );
                }
            }
            Ok(OpOutput::None)
        }
        KernelOp::Evaluate {
            root_branch,
            mask,
            tables,
        } => {
            let (left, right) = ctx.tree.branch_endpoints(*root_branch);
            let mut out = vec![0.0; partitions];
            for pi in 0..partitions {
                if !mask[pi] || worker.slices[pi].pattern_count() == 0 {
                    continue;
                }
                let model = ctx.models.model(pi);
                out[pi] = match tables.as_deref() {
                    Some(t) => {
                        // A table payload must cover every active partition;
                        // a hole is a typed error (matching the Newview
                        // contract), never an index panic or a silent
                        // fall-back that would skew the analytic traces.
                        let Some(edge) = t.per_partition.get(pi).and_then(|e| e.as_deref()) else {
                            return Err(OpError::TableShape {
                                partition: pi,
                                expected: 1,
                                got: 0,
                            });
                        };
                        let lnl = match t.dispatch {
                            KernelDispatch::Blocked => blocked::evaluate_edge_blocked(
                                &worker.slices[pi],
                                &mut worker.buffers[pi],
                                model,
                                left,
                                right,
                                edge,
                            )?,
                            KernelDispatch::Scalar => ops::evaluate_edge_tabled(
                                &worker.slices[pi],
                                &mut worker.buffers[pi],
                                model,
                                left,
                                right,
                                edge,
                            )?,
                        };
                        worker.buffers[pi].count_dispatch_patterns(
                            t.dispatch,
                            worker.slices[pi].pattern_count() as u64,
                        );
                        lnl
                    }
                    None => {
                        let len = ctx.branch_lengths.get(pi, *root_branch);
                        ops::evaluate_edge(
                            &worker.slices[pi],
                            &worker.buffers[pi],
                            model,
                            left,
                            right,
                            len,
                        )?
                    }
                };
            }
            Ok(OpOutput::LogLikelihoods(out))
        }
        KernelOp::Sumtable { branch, mask } => {
            let (left, right) = ctx.tree.branch_endpoints(*branch);
            for (pi, &active) in mask.iter().enumerate() {
                if !active || worker.slices[pi].pattern_count() == 0 {
                    continue;
                }
                let model = ctx.models.model(pi);
                ops::build_sumtable(
                    &worker.slices[pi],
                    &mut worker.buffers[pi],
                    model,
                    left,
                    right,
                )?;
            }
            Ok(OpOutput::None)
        }
        KernelOp::Derivatives { lengths } => {
            let mut out = vec![None; partitions];
            for pi in 0..partitions {
                let Some(t) = lengths[pi] else { continue };
                if worker.slices[pi].pattern_count() == 0 {
                    // An idle worker still reports a zero contribution so the
                    // reduction shape stays uniform.
                    out[pi] = Some(EdgeDerivatives::default());
                    continue;
                }
                let model = ctx.models.model(pi);
                out[pi] = Some(ops::derivatives_from_sumtable(
                    &worker.slices[pi],
                    &worker.buffers[pi],
                    model,
                    t,
                )?);
            }
            Ok(OpOutput::Derivatives(out))
        }
    }
}

/// Sums two per-partition outputs of the same shape (the reduction step).
///
/// # Errors
///
/// [`OpError::ReduceMismatch`] when the two outputs are of different kinds —
/// an executor-implementation bug (e.g. one worker answered a Newview command
/// with log likelihoods), surfaced as a value so a buggy backend cannot take
/// the master down with it.
pub fn reduce_outputs(a: OpOutput, b: OpOutput) -> Result<OpOutput, OpError> {
    match (a, b) {
        (OpOutput::None, OpOutput::None) => Ok(OpOutput::None),
        (OpOutput::LogLikelihoods(mut x), OpOutput::LogLikelihoods(y)) => {
            for (xi, yi) in x.iter_mut().zip(y) {
                *xi += yi;
            }
            Ok(OpOutput::LogLikelihoods(x))
        }
        (OpOutput::Derivatives(mut x), OpOutput::Derivatives(y)) => {
            for (xi, yi) in x.iter_mut().zip(y) {
                match (xi.as_mut(), yi) {
                    (Some(a), Some(b)) => {
                        a.log_likelihood += b.log_likelihood;
                        a.first += b.first;
                        a.second += b.second;
                    }
                    (None, Some(b)) => *xi = Some(b),
                    _ => {}
                }
            }
            Ok(OpOutput::Derivatives(x))
        }
        (a, b) => Err(OpError::ReduceMismatch {
            left: a.kind_name(),
            right: b.kind_name(),
        }),
    }
}

/// A single worker owning every pattern: the sequential reference backend.
#[derive(Debug)]
pub struct SequentialExecutor {
    worker: WorkerSlices,
    sync_events: u64,
    telemetry: phylo_telemetry::Telemetry,
}

impl SequentialExecutor {
    /// Creates the sequential executor for a dataset.
    pub fn new(
        patterns: &phylo_data::PartitionedPatterns,
        node_capacity: usize,
        categories: &[usize],
    ) -> Self {
        Self {
            worker: WorkerSlices::cyclic(patterns, 0, 1, node_capacity, categories),
            sync_events: 0,
            telemetry: phylo_telemetry::Telemetry::disabled(),
        }
    }

    /// Read access to the worker (tests / diagnostics).
    pub fn worker(&self) -> &WorkerSlices {
        &self.worker
    }
}

impl Executor for SequentialExecutor {
    fn worker_count(&self) -> usize {
        1
    }

    fn execute(&mut self, op: &KernelOp, ctx: &ExecContext<'_>) -> Result<OpOutput, ExecError> {
        self.sync_events += 1;
        if !self.telemetry.enabled() {
            return execute_on_worker(&mut self.worker, op, ctx).map_err(ExecError::from);
        }
        let token = self
            .telemetry
            .region_start(op.kind().label(), &op.active_partitions());
        // lint:allow(L008): region timing on the telemetry-enabled path only;
        // feeds the measured-trace feedback, never the reduction order.
        let started = std::time::Instant::now();
        let result = execute_on_worker(&mut self.worker, op, ctx).map_err(ExecError::from);
        let seconds = started.elapsed().as_secs_f64();
        let (hits, misses, builds) = self.worker.take_tip_cache_counters();
        self.telemetry.add_tip_cache(hits, misses, builds);
        let (blocked, scalar) = self.worker.take_dispatch_counters();
        self.telemetry.add_dispatch_patterns(blocked, scalar);
        // The single worker never queues; a rejected op still completes the
        // region (aborted regions are reserved for worker deaths).
        self.telemetry.region_end(token, &[seconds], &[0.0]);
        result
    }

    fn sync_events(&self) -> u64 {
        self.sync_events
    }

    fn attach_telemetry(&mut self, telemetry: &phylo_telemetry::Telemetry) {
        self.telemetry = telemetry.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::EdgeDerivatives;

    #[test]
    fn reduce_log_likelihoods_sums_per_partition() {
        let a = OpOutput::LogLikelihoods(vec![-1.0, -2.0]);
        let b = OpOutput::LogLikelihoods(vec![-3.0, -4.0]);
        match reduce_outputs(a, b).unwrap() {
            OpOutput::LogLikelihoods(v) => assert_eq!(v, vec![-4.0, -6.0]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reduce_derivatives_sums_fields() {
        let a = OpOutput::Derivatives(vec![
            Some(EdgeDerivatives {
                log_likelihood: -1.0,
                first: 2.0,
                second: -3.0,
            }),
            None,
        ]);
        let b = OpOutput::Derivatives(vec![
            Some(EdgeDerivatives {
                log_likelihood: -1.5,
                first: 1.0,
                second: -1.0,
            }),
            Some(EdgeDerivatives {
                log_likelihood: -9.0,
                first: 0.5,
                second: -0.5,
            }),
        ]);
        match reduce_outputs(a, b).unwrap() {
            OpOutput::Derivatives(v) => {
                let first = v[0].unwrap();
                assert!((first.log_likelihood + 2.5).abs() < 1e-12);
                assert!((first.first - 3.0).abs() < 1e-12);
                assert!((first.second + 4.0).abs() < 1e-12);
                assert!(v[1].is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reduce_mismatched_outputs_is_a_typed_error() {
        let err = reduce_outputs(OpOutput::None, OpOutput::LogLikelihoods(vec![0.0])).unwrap_err();
        assert!(matches!(err, OpError::ReduceMismatch { .. }), "{err}");
        assert!(err.to_string().contains("log-likelihood"), "{err}");
    }

    #[test]
    fn op_output_unwrap_helpers() {
        assert_eq!(
            OpOutput::LogLikelihoods(vec![1.0])
                .try_into_log_likelihoods()
                .unwrap(),
            vec![1.0]
        );
        assert_eq!(
            OpOutput::Derivatives(vec![None])
                .try_into_derivatives()
                .unwrap(),
            vec![None]
        );
        assert!(matches!(
            OpOutput::None.try_into_log_likelihoods().unwrap_err(),
            KernelError::OutputMismatch {
                expected: "log-likelihood",
                got: "empty"
            }
        ));
        assert!(matches!(
            OpOutput::LogLikelihoods(vec![])
                .try_into_derivatives()
                .unwrap_err(),
            KernelError::OutputMismatch { .. }
        ));
    }

    #[test]
    fn malformed_table_payloads_are_typed_errors_not_panics() {
        use crate::branch_lengths::BranchLengths;
        use crate::tables::{EdgeTables, NewviewTables};
        use crate::OpError;
        use phylo_data::{Alignment, DataType, PartitionSet, PartitionedPatterns};
        use phylo_models::{BranchLengthMode, ModelSet};
        use phylo_tree::{TraversalPlan, Tree};

        let aln = Alignment::new(vec![
            ("t0".into(), "ACGTACGT".into()),
            ("t1".into(), "ACGAACGA".into()),
            ("t2".into(), "ACCTACGT".into()),
        ])
        .unwrap();
        let ps = PartitionSet::equal_length(DataType::Dna, 8, 4);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let tree = Tree::initial_triplet(pp.taxa.clone(), [0, 1, 2]);
        let models = ModelSet::default_for(&pp, BranchLengthMode::Joint);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let mut worker = WorkerSlices::cyclic(&pp, 0, 1, tree.node_capacity(), &cats);
        let bl = BranchLengths::from_tree(&tree, pp.partition_count(), models.branch_mode());
        let ctx = ExecContext {
            tree: &tree,
            models: &models,
            branch_lengths: &bl,
        };

        // A table payload shorter than the partition count (a custom driver
        // could build one — the fields are public): typed error, not an
        // index panic that a parallel backend would report as WorkerDied.
        let plan = TraversalPlan::full(&tree, tree.neighbors(0)[0].1);
        let plans: Vec<Option<TraversalPlan>> = vec![Some(plan.clone()), Some(plan)];
        let short = Arc::new(NewviewTables {
            per_partition: vec![None],
            dispatch: crate::tables::KernelDispatch::default(),
        });
        let op = KernelOp::Newview {
            plans,
            tables: Some(short),
        };
        let err = execute_on_worker(&mut worker, &op, &ctx).unwrap_err();
        assert!(
            matches!(err, OpError::TableShape { partition: 0, .. }),
            "{err:?}"
        );

        // Same contract for Evaluate: an active partition without its table
        // entry is a hole in the payload, not a silent per-call fall-back.
        let op = KernelOp::Newview {
            plans: vec![Some(TraversalPlan::full(&tree, 0)), None],
            tables: None,
        };
        execute_on_worker(&mut worker, &op, &ctx).unwrap();
        let holey = Arc::new(EdgeTables {
            per_partition: vec![None; 2],
            dispatch: crate::tables::KernelDispatch::default(),
        });
        let op = KernelOp::Evaluate {
            root_branch: 0,
            mask: vec![true, false],
            tables: Some(holey),
        };
        let err = execute_on_worker(&mut worker, &op, &ctx).unwrap_err();
        assert!(
            matches!(err, OpError::TableShape { partition: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn kernel_op_kind_labels() {
        use crate::cost::OpKind;
        let op = KernelOp::Evaluate {
            root_branch: 0,
            mask: vec![true],
            tables: None,
        };
        assert_eq!(op.kind(), OpKind::Evaluate);
        let op = KernelOp::Derivatives {
            lengths: vec![Some(0.1)],
        };
        assert_eq!(op.kind(), OpKind::Derivatives);
    }
}
