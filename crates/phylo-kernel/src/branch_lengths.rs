//! Joint and per-partition branch-length storage.
//!
//! In a joint analysis all partitions share one branch-length vector; in a
//! per-partition analysis every partition owns an independent vector (this is
//! the model the paper argues for, and the one where the oldPAR scheme's load
//! imbalance is most severe). Both are stored per branch id, matching the
//! branch indexing of [`phylo_tree::Tree`].

use phylo_models::BranchLengthMode;
use phylo_tree::topology::{MAX_BRANCH_LENGTH, MIN_BRANCH_LENGTH};
use phylo_tree::{BranchId, Tree};

/// Branch lengths for all partitions of an analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchLengths {
    mode: BranchLengthMode,
    /// `lengths[partition][branch]`; in joint mode there is a single row that
    /// all partitions share.
    lengths: Vec<Vec<f64>>,
    partitions: usize,
}

impl BranchLengths {
    /// Initializes branch lengths from the tree's current lengths.
    pub fn from_tree(tree: &Tree, partitions: usize, mode: BranchLengthMode) -> Self {
        assert!(partitions > 0, "at least one partition required");
        let base: Vec<f64> = tree.branch_lengths().to_vec();
        let rows = match mode {
            BranchLengthMode::Joint => 1,
            BranchLengthMode::PerPartition => partitions,
        };
        Self {
            mode,
            lengths: vec![base; rows],
            partitions,
        }
    }

    /// The sharing mode.
    pub fn mode(&self) -> BranchLengthMode {
        self.mode
    }

    /// Number of partitions the storage serves.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Number of branches per partition.
    pub fn branch_count(&self) -> usize {
        self.lengths[0].len()
    }

    fn row(&self, partition: usize) -> usize {
        match self.mode {
            BranchLengthMode::Joint => 0,
            BranchLengthMode::PerPartition => partition,
        }
    }

    /// Branch length of `branch` as seen by `partition`.
    #[inline]
    pub fn get(&self, partition: usize, branch: BranchId) -> f64 {
        self.lengths[self.row(partition)][branch]
    }

    /// Sets the branch length of `branch` for `partition` (for every partition
    /// in joint mode), clamped to the supported range.
    pub fn set(&mut self, partition: usize, branch: BranchId, value: f64) {
        let row = self.row(partition);
        self.lengths[row][branch] = value.clamp(MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH);
    }

    /// Sets the length of `branch` for *all* partitions.
    pub fn set_all(&mut self, branch: BranchId, value: f64) {
        let clamped = value.clamp(MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH);
        for row in &mut self.lengths {
            row[branch] = clamped;
        }
    }

    /// All lengths of one branch, one entry per partition.
    pub fn per_partition(&self, branch: BranchId) -> Vec<f64> {
        (0..self.partitions).map(|p| self.get(p, branch)).collect()
    }

    /// Grows/repairs the storage after a topology change that altered the
    /// number of branches (not used by SPR, which preserves branch count, but
    /// kept for completeness and defensive callers).
    pub fn resize_branches(&mut self, branch_count: usize, default: f64) {
        for row in &mut self.lengths {
            row.resize(
                branch_count,
                default.clamp(MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH),
            );
        }
    }

    /// Copies all branch lengths of partition `from` (or the joint row) into
    /// the tree's branch-length slots, e.g. for reporting or Newick export.
    pub fn write_to_tree(&self, tree: &mut Tree, from: usize) {
        let row = self.row(from);
        for b in 0..self.lengths[row].len().min(tree.branch_count()) {
            tree.set_branch_length(b, self.lengths[row][b]);
        }
    }

    /// Applies the length bookkeeping of an SPR move: the two branches around
    /// the pruned node merge into `kept` (their lengths add), and the `target`
    /// branch is split in half between `target` and the re-used `freed`
    /// branch. Mirrors what [`phylo_tree::spr::apply`] does to the tree's own
    /// joint lengths, but for every partition row.
    pub fn apply_spr(&mut self, kept: BranchId, freed: BranchId, target: BranchId) {
        for row in &mut self.lengths {
            row[kept] = (row[kept] + row[freed]).min(MAX_BRANCH_LENGTH);
            let half = (row[target] * 0.5).max(MIN_BRANCH_LENGTH);
            row[target] = half;
            row[freed] = half;
        }
    }

    /// Snapshot of the given branches' lengths across all rows, for undo.
    pub fn snapshot(&self, branches: &[BranchId]) -> Vec<(BranchId, Vec<f64>)> {
        branches
            .iter()
            .map(|&b| (b, self.lengths.iter().map(|row| row[b]).collect()))
            .collect()
    }

    /// Restores a snapshot previously taken with [`BranchLengths::snapshot`].
    pub fn restore(&mut self, snapshot: &[(BranchId, Vec<f64>)]) {
        for (branch, values) in snapshot {
            for (row, &v) in self.lengths.iter_mut().zip(values.iter()) {
                row[*branch] = v;
            }
        }
    }

    /// Arithmetic mean of a branch's length across partitions (equals the
    /// plain length in joint mode).
    pub fn mean(&self, branch: BranchId) -> f64 {
        let sum: f64 = (0..self.partitions).map(|p| self.get(p, branch)).sum();
        sum / self.partitions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_tree::random::random_tree;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tree() -> Tree {
        let names: Vec<String> = (0..6).map(|i| format!("t{i}")).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        random_tree(&names, &mut rng)
    }

    #[test]
    fn joint_mode_shares_one_row() {
        let t = tree();
        let mut bl = BranchLengths::from_tree(&t, 5, BranchLengthMode::Joint);
        assert_eq!(bl.branch_count(), t.branch_count());
        bl.set(3, 0, 0.7);
        for p in 0..5 {
            assert!(
                (bl.get(p, 0) - 0.7).abs() < 1e-15,
                "joint mode must share lengths"
            );
        }
    }

    #[test]
    fn per_partition_mode_is_independent() {
        let t = tree();
        let mut bl = BranchLengths::from_tree(&t, 3, BranchLengthMode::PerPartition);
        bl.set(0, 2, 0.5);
        bl.set(1, 2, 0.05);
        assert!((bl.get(0, 2) - 0.5).abs() < 1e-15);
        assert!((bl.get(1, 2) - 0.05).abs() < 1e-15);
        assert!((bl.get(2, 2) - t.branch_length(2)).abs() < 1e-15);
        let all = bl.per_partition(2);
        assert_eq!(all.len(), 3);
        assert!((bl.mean(2) - (0.5 + 0.05 + t.branch_length(2)) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn values_are_clamped() {
        let t = tree();
        let mut bl = BranchLengths::from_tree(&t, 1, BranchLengthMode::Joint);
        bl.set(0, 0, -5.0);
        assert!(bl.get(0, 0) >= MIN_BRANCH_LENGTH);
        bl.set_all(1, 1e9);
        assert!(bl.get(0, 1) <= MAX_BRANCH_LENGTH);
    }

    #[test]
    fn initialization_matches_tree() {
        let t = tree();
        let bl = BranchLengths::from_tree(&t, 2, BranchLengthMode::PerPartition);
        for b in t.branches() {
            assert!((bl.get(0, b) - t.branch_length(b)).abs() < 1e-15);
            assert!((bl.get(1, b) - t.branch_length(b)).abs() < 1e-15);
        }
    }

    #[test]
    fn write_to_tree_round_trips() {
        let mut t = tree();
        let mut bl = BranchLengths::from_tree(&t, 2, BranchLengthMode::PerPartition);
        bl.set(1, 0, 0.33);
        bl.write_to_tree(&mut t, 1);
        assert!((t.branch_length(0) - 0.33).abs() < 1e-12);
    }
}
