//! Analytic floating-point cost model of the kernel primitives.
//!
//! The instrumented (virtual) executor and the platform performance model need
//! to know how much arithmetic each kernel command performs per alignment
//! pattern. These formulas count the multiply–add operations of the inner
//! loops in [`crate::ops`]; absolute constants do not matter for the
//! load-balance analysis (they cancel in speedups), but the *ratios* between
//! data types do: a 20-state protein column costs roughly
//! `(20/4)² = 25×` more than a DNA column in `newview`, which is exactly the
//! argument the paper makes for why the protein datasets suffer less from the
//! load imbalance.

/// Floating-point operations for one `newview` pattern: for every rate
/// category and target state, two inner products of length `states` plus one
/// multiply.
pub fn newview_flops(states: usize, categories: usize) -> f64 {
    (categories * states * (4 * states + 1)) as f64
}

/// Floating-point operations for one `newview` pattern under the
/// **shared-table kernel** (see [`crate::tables`]): internal children still
/// cost an inner product of length `states` per (category, state), but tip
/// children collapse to a single precomputed lookup. In an unrooted binary
/// tree with `n` taxa the traversal's `n − 2` steps have `2(n − 2)` child
/// slots of which `n` are tips, so the expected child mix is ≈ half tips —
/// per (category, state): `2·(2·states + 1)/2` for the two children plus one
/// multiply, i.e. `2·states + 2`.
///
/// This is the *recalibrated* analytic cost the schedulers should pack
/// against when the engine runs with shared tables: the protein/DNA ratio
/// drops from `(4·20+1)/(4·4+1) · 5 ≈ 23.8` to `(2·20+2)/(2·4+2) · 5 = 21`
/// because tip lookups flatten the per-state gap (`phylo-perfmodel`'s
/// `CostCalibration` checks this against measured per-pattern costs).
pub fn newview_flops_tabled(states: usize, categories: usize) -> f64 {
    (categories * states * (2 * states + 2)) as f64
}

/// Effective per-pattern cost of one `newview` pattern under the
/// **cache-blocked, width-specialized kernel** (see [`crate::blocked`]), in
/// scalar-tabled-FLOP-equivalent units.
///
/// The blocked loops perform the same arithmetic as
/// [`newview_flops_tabled`] — blocking re-orders, it does not re-count — but
/// their *effective throughput* differs per state width, and the scheduler
/// packs against effective cost, not instruction counts. Two effects set the
/// shape, both calibrated against the `kernel_tables` yardstick:
///
/// * the arithmetic itself runs packed: the 20-state column-broadcast GEMV
///   and the unrolled 4×4 product both retire ≈ 4 packed multiply–adds per
///   issue, so the flop term shrinks by that factor for *both* widths;
/// * every (pattern, category) block pays a fixed overhead — child
///   resolution, the `at_category` dispatch, the scaling epilogue and loop
///   bookkeeping — that does not scale with `states²`. For DNA the 4×4
///   product is so small that this overhead is most of the cost; for protein
///   it is noise.
///
/// The net effect is that the measured protein/DNA per-pattern cost ratio
/// *collapses* from the tabled model's 21 to ≈ 5.8; the
/// `flops / lanes + overhead` form below reproduces it at 6.0, inside the
/// factor-2 drift gate the `kernel_tables` report enforces.
pub fn newview_flops_blocked(states: usize, categories: usize) -> f64 {
    /// Packed f64 lanes the blocked inner loops retire per issue (256-bit
    /// SIMD: 4 × f64).
    const SIMD_LANES: f64 = 4.0;
    /// Fixed per-(pattern, category) cost in scalar-FLOP equivalents, fitted
    /// to the measured blocked DNA/protein split.
    const BLOCK_OVERHEAD: f64 = 30.0;
    categories as f64 * ((states * (2 * states + 2)) as f64 / SIMD_LANES + BLOCK_OVERHEAD)
}

/// Floating-point operations for one `evaluate` pattern at the virtual root.
pub fn evaluate_flops(states: usize, categories: usize) -> f64 {
    (categories * states * (2 * states + 3)) as f64
}

/// Floating-point operations for building one sum-table pattern.
pub fn sumtable_flops(states: usize, categories: usize) -> f64 {
    (categories * states * (4 * states + 1)) as f64
}

/// Floating-point operations for one Newton–Raphson derivative pattern (the
/// per-iteration cost once the sum table exists).
pub fn derivative_flops(states: usize, categories: usize) -> f64 {
    (categories * states * 6 + 8) as f64
}

/// Per-pattern cost of computing the transition matrices for one branch
/// (independent of the pattern count; amortized over a parallel region).
pub fn pmatrix_flops(states: usize, categories: usize) -> f64 {
    (categories * states * states * (2 * states + 1)) as f64
}

/// Approximate bytes of likelihood-array traffic per `newview` pattern
/// (reading two child CLVs, writing one), used by the memory-bandwidth term of
/// the platform model. RAxML is memory bound, so this term matters for
/// absolute run-time shapes.
pub fn newview_bytes(states: usize, categories: usize) -> f64 {
    (3 * categories * states * std::mem::size_of::<f64>()) as f64
}

/// Which per-worker measurement a trace consumer reads.
///
/// Every [`RegionRecord`] carries two parallel measurements: the *analytic*
/// FLOP count (filled by the virtual tracing executor) and the *measured*
/// wall-clock seconds (filled by any measuring executor — the timed
/// real-thread backend, or the sequential tracing backend, whose per-worker
/// brackets run contention-free on one core). Balance metrics, per-worker
/// totals and the critical path are defined identically over both, so
/// schedulers and reports can consume either unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TraceUnit {
    /// Analytic floating-point operations from the cost model.
    #[default]
    Flops,
    /// Measured wall-clock seconds from a timed executor.
    Seconds,
}

/// Why two traces could not be combined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The traces were recorded for different worker counts; concatenating
    /// them would silently mis-attribute per-worker totals.
    WorkerMismatch {
        /// Workers of the trace being extended.
        expected: usize,
        /// Workers of the trace being appended.
        got: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WorkerMismatch { expected, got } => write!(
                f,
                "cannot extend a {expected}-worker trace with a {got}-worker trace"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// The kind of kernel command, used to label work records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// CLV updates along a traversal list.
    Newview,
    /// Log-likelihood reduction at the virtual root.
    Evaluate,
    /// Branch sum-table construction.
    Sumtable,
    /// Newton–Raphson derivative evaluation.
    Derivatives,
}

impl OpKind {
    /// Lower-case label of the op kind (the telemetry event `kind` field).
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Newview => "newview",
            OpKind::Evaluate => "evaluate",
            OpKind::Sumtable => "sumtable",
            OpKind::Derivatives => "derivatives",
        }
    }
}

/// Work performed by every (virtual) worker inside one parallel region,
/// bracketed by one synchronization event.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionRecord {
    /// What the region computed.
    pub kind: OpKind,
    /// FLOPs each worker performed in the region.
    pub flops_per_worker: Vec<f64>,
    /// Likelihood-array bytes each worker touched in the region.
    pub bytes_per_worker: Vec<f64>,
    /// Measured wall-clock seconds each worker spent in the region (all
    /// zeros unless the region was recorded by a timed executor).
    pub seconds_per_worker: Vec<f64>,
    /// The convergence-mask shape of the region: which partitions were
    /// active in the command (empty when the recording executor does not
    /// track masks). A *partial* mask — some partitions converged or
    /// excluded — is the oldPAR-like situation whose load balance the
    /// mask-aware rescheduler watches.
    pub active_partitions: Vec<bool>,
    /// Live pattern count each worker touched in the region (patterns of
    /// inactive partitions are skipped and not counted; `newview` counts are
    /// weighted by traversal length). All zeros unless recorded.
    pub active_patterns_per_worker: Vec<f64>,
}

impl RegionRecord {
    /// New empty record for `workers` workers.
    pub fn new(kind: OpKind, workers: usize) -> Self {
        Self {
            kind,
            flops_per_worker: vec![0.0; workers],
            bytes_per_worker: vec![0.0; workers],
            seconds_per_worker: vec![0.0; workers],
            active_partitions: Vec::new(),
            active_patterns_per_worker: vec![0.0; workers],
        }
    }

    /// Whether the region ran under a *partial* convergence mask: its
    /// recorded mask excludes at least one partition. Regions without a
    /// recorded mask report `false`.
    pub fn is_masked(&self) -> bool {
        !self.active_partitions.is_empty() && self.active_partitions.iter().any(|a| !a)
    }

    /// The per-worker measurements in the requested unit.
    pub fn per_worker(&self, unit: TraceUnit) -> &[f64] {
        match unit {
            TraceUnit::Flops => &self.flops_per_worker,
            TraceUnit::Seconds => &self.seconds_per_worker,
        }
    }

    /// The most loaded worker in the requested unit — the quantity that
    /// determines the region's critical path.
    pub fn max_in(&self, unit: TraceUnit) -> f64 {
        self.per_worker(unit).iter().cloned().fold(0.0, f64::max)
    }

    /// Total work across workers in the requested unit.
    pub fn total_in(&self, unit: TraceUnit) -> f64 {
        self.per_worker(unit).iter().sum()
    }

    /// Parallel efficiency of the region in the requested unit: average work
    /// divided by maximum work (1.0 = perfectly balanced, → 0 when threads
    /// idle).
    pub fn balance_in(&self, unit: TraceUnit) -> f64 {
        let max = self.max_in(unit);
        if max == 0.0 {
            return 1.0;
        }
        self.total_in(unit) / (self.per_worker(unit).len() as f64 * max)
    }

    /// The most loaded worker's FLOPs ([`RegionRecord::max_in`] for
    /// [`TraceUnit::Flops`]).
    pub fn max_flops(&self) -> f64 {
        self.max_in(TraceUnit::Flops)
    }

    /// Total FLOPs across workers.
    pub fn total_flops(&self) -> f64 {
        self.total_in(TraceUnit::Flops)
    }

    /// Parallel efficiency of the region over FLOPs.
    pub fn balance(&self) -> f64 {
        self.balance_in(TraceUnit::Flops)
    }
}

/// A full execution trace: one record per parallel region / synchronization
/// event. This is what the platform performance model consumes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkTrace {
    /// Records in execution order.
    pub regions: Vec<RegionRecord>,
    /// Number of workers the trace was recorded for.
    pub workers: usize,
}

impl WorkTrace {
    /// Creates an empty trace for `workers` workers.
    pub fn new(workers: usize) -> Self {
        Self {
            regions: Vec::new(),
            workers,
        }
    }

    /// Number of synchronization events (== number of parallel regions).
    pub fn sync_events(&self) -> usize {
        self.regions.len()
    }

    /// Total work across all regions and workers in the requested unit.
    pub fn total_in(&self, unit: TraceUnit) -> f64 {
        self.regions.iter().map(|r| r.total_in(unit)).sum()
    }

    /// Sum over regions of the most-loaded worker's work in the requested
    /// unit: the critical path of the computation under the
    /// barrier-per-region execution model.
    pub fn critical_path_in(&self, unit: TraceUnit) -> f64 {
        self.regions.iter().map(|r| r.max_in(unit)).sum()
    }

    /// Overall load balance in the requested unit: total work divided by
    /// (workers × critical path).
    pub fn overall_balance_in(&self, unit: TraceUnit) -> f64 {
        let cp = self.critical_path_in(unit);
        if cp == 0.0 {
            return 1.0;
        }
        self.total_in(unit) / (self.workers as f64 * cp)
    }

    /// Total work each worker performed in the requested unit, summed over
    /// all regions.
    pub fn per_worker_total_in(&self, unit: TraceUnit) -> Vec<f64> {
        let mut totals = vec![0.0; self.workers];
        for region in &self.regions {
            for (w, &v) in region.per_worker(unit).iter().enumerate() {
                totals[w] += v;
            }
        }
        totals
    }

    /// Whether any region carries a non-zero wall-clock measurement. Both
    /// the timed real-thread executor and the sequential tracing executor
    /// fill seconds; only the former's relative per-worker times reflect
    /// genuine parallel-worker speed.
    pub fn has_seconds(&self) -> bool {
        self.regions
            .iter()
            .any(|r| r.seconds_per_worker.iter().any(|&s| s > 0.0))
    }

    /// Total FLOPs across all regions and workers.
    pub fn total_flops(&self) -> f64 {
        self.total_in(TraceUnit::Flops)
    }

    /// Total measured seconds across all regions and workers.
    pub fn total_seconds(&self) -> f64 {
        self.total_in(TraceUnit::Seconds)
    }

    /// Critical path over FLOPs ([`WorkTrace::critical_path_in`]).
    pub fn critical_path_flops(&self) -> f64 {
        self.critical_path_in(TraceUnit::Flops)
    }

    /// Total likelihood-array bytes across all regions and workers.
    pub fn total_bytes(&self) -> f64 {
        self.regions
            .iter()
            .map(|r| r.bytes_per_worker.iter().sum::<f64>())
            .sum()
    }

    /// Overall load balance over FLOPs.
    pub fn overall_balance(&self) -> f64 {
        self.overall_balance_in(TraceUnit::Flops)
    }

    /// Total FLOPs each worker performed, summed over all regions.
    pub fn flops_per_worker_total(&self) -> Vec<f64> {
        self.per_worker_total_in(TraceUnit::Flops)
    }

    /// Number of regions that ran under a partial convergence mask (see
    /// [`RegionRecord::is_masked`]).
    pub fn masked_region_count(&self) -> usize {
        self.regions.iter().filter(|r| r.is_masked()).count()
    }

    /// Per-worker totals in the requested unit over the *masked* regions
    /// only — the load each worker carried while part of the dataset was
    /// converged. This is the measurement the paper's oldPAR analysis is
    /// about: full-mask regions balance almost any schedule, partial-mask
    /// regions are where placement shows.
    pub fn masked_per_worker_total_in(&self, unit: TraceUnit) -> Vec<f64> {
        let mut totals = vec![0.0; self.workers];
        for region in self.regions.iter().filter(|r| r.is_masked()) {
            for (w, &v) in region.per_worker(unit).iter().enumerate() {
                totals[w] += v;
            }
        }
        totals
    }

    /// Overall load balance in the requested unit over the masked regions
    /// only (`1.0` when there are none).
    pub fn masked_overall_balance_in(&self, unit: TraceUnit) -> f64 {
        let masked: Vec<&RegionRecord> = self.regions.iter().filter(|r| r.is_masked()).collect();
        let cp: f64 = masked.iter().map(|r| r.max_in(unit)).sum();
        if cp == 0.0 {
            return 1.0;
        }
        let total: f64 = masked.iter().map(|r| r.total_in(unit)).sum();
        total / (self.workers as f64 * cp)
    }

    /// The last `window` *masked* regions (see [`RegionRecord::is_masked`]),
    /// oldest first — the oldPAR-like phases a mask-aware rescheduler
    /// measures over. Full-mask regions (which balance almost any schedule
    /// and would dilute the live measurement) are skipped.
    pub fn recent_masked_regions(&self, window: usize) -> Vec<&RegionRecord> {
        let mut recent: Vec<&RegionRecord> = self
            .regions
            .iter()
            .rev()
            .filter(|r| r.is_masked())
            .take(window)
            .collect();
        recent.reverse();
        recent
    }

    /// Per-worker totals in the requested unit over the last `window`
    /// masked regions.
    pub fn masked_window_per_worker_total_in(&self, unit: TraceUnit, window: usize) -> Vec<f64> {
        let mut totals = vec![0.0; self.workers];
        for region in self.recent_masked_regions(window) {
            for (w, &v) in region.per_worker(unit).iter().enumerate() {
                totals[w] += v;
            }
        }
        totals
    }

    /// Union of the recorded convergence masks over the last `window` masked
    /// regions: which partitions were live in the recent partial-mask phase
    /// of the run. `None` when there is no masked region.
    pub fn masked_window_active_partitions(&self, window: usize) -> Option<Vec<bool>> {
        let mut union: Option<Vec<bool>> = None;
        for region in self.recent_masked_regions(window) {
            match union.as_mut() {
                None => union = Some(region.active_partitions.clone()),
                Some(u) => {
                    if u.len() == region.active_partitions.len() {
                        for (a, &b) in u.iter_mut().zip(&region.active_partitions) {
                            *a = *a || b;
                        }
                    }
                }
            }
        }
        union
    }

    /// Per-worker totals in the requested unit over the last `window` masked
    /// regions, weighted by recency: the most recent masked region has weight
    /// `1`, the one before it `decay`, then `decay²` and so on. `decay = 1.0`
    /// reproduces the plain equal-weight window
    /// ([`WorkTrace::masked_window_per_worker_total_in`]); smaller values let
    /// a mask-aware rescheduler track the *current* convergence-mask shape
    /// instead of averaging over stale phases.
    pub fn masked_window_decayed_per_worker_total_in(
        &self,
        unit: TraceUnit,
        window: usize,
        decay: f64,
    ) -> Vec<f64> {
        let mut totals = vec![0.0; self.workers];
        let recent = self.recent_masked_regions(window);
        let newest = recent.len().saturating_sub(1);
        for (i, region) in recent.iter().enumerate() {
            let weight = decay.powi((newest - i) as i32);
            for (w, &v) in region.per_worker(unit).iter().enumerate() {
                totals[w] += weight * v;
            }
        }
        totals
    }

    /// Decay-weighted partition liveness over the last `window` masked
    /// regions: partition `p` counts as live when the decayed weight of the
    /// regions whose mask included it is at least `cutoff` of the window's
    /// total decayed weight. With `decay = 1.0` and `cutoff = 0.0` this is
    /// exactly the trailing-window union
    /// ([`WorkTrace::masked_window_active_partitions`]); a positive cutoff
    /// additionally drops partitions that were live only in the oldest,
    /// almost-forgotten regions of the window. `None` when there is no
    /// masked region.
    pub fn masked_window_decayed_active_partitions(
        &self,
        window: usize,
        decay: f64,
        cutoff: f64,
    ) -> Option<Vec<bool>> {
        let recent = self.recent_masked_regions(window);
        let first = recent.first()?;
        let partitions = first.active_partitions.len();
        let newest = recent.len() - 1;
        let mut live_weight = vec![0.0f64; partitions];
        let mut total_weight = 0.0f64;
        for (i, region) in recent.iter().enumerate() {
            let weight = decay.powi((newest - i) as i32);
            total_weight += weight;
            if region.active_partitions.len() != partitions {
                continue;
            }
            for (p, &active) in region.active_partitions.iter().enumerate() {
                if active {
                    live_weight[p] += weight;
                }
            }
        }
        if total_weight <= 0.0 {
            return Some(vec![true; partitions]);
        }
        Some(
            live_weight
                .iter()
                .map(|&w| w / total_weight >= cutoff && w > 0.0)
                .collect(),
        )
    }

    /// Total live pattern count each worker touched, summed over all regions
    /// (see [`RegionRecord::active_patterns_per_worker`]).
    pub fn live_patterns_per_worker_total(&self) -> Vec<f64> {
        let mut totals = vec![0.0; self.workers];
        for region in &self.regions {
            for (w, &v) in region.active_patterns_per_worker.iter().enumerate() {
                totals[w] += v;
            }
        }
        totals
    }

    /// Appends another trace (e.g. from a later phase of the same run).
    ///
    /// # Errors
    ///
    /// [`TraceError::WorkerMismatch`] if the traces were recorded for
    /// different worker counts. (This used to be a `debug_assert!`, which
    /// let release builds silently concatenate misaligned traces and
    /// mis-sum — or panic in — the per-worker totals later.)
    pub fn extend(&mut self, other: &WorkTrace) -> Result<(), TraceError> {
        if self.workers != other.workers {
            return Err(TraceError::WorkerMismatch {
                expected: self.workers,
                got: other.workers,
            });
        }
        self.regions.extend(other.regions.iter().cloned());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protein_newview_is_about_25x_dna() {
        let dna = newview_flops(4, 4);
        let protein = newview_flops(20, 4);
        let ratio = protein / dna;
        assert!(
            (20.0..30.0).contains(&ratio),
            "protein/DNA newview cost ratio {ratio} should be ≈25"
        );
    }

    #[test]
    fn derivative_iterations_are_much_cheaper_than_newview() {
        assert!(derivative_flops(4, 4) < newview_flops(4, 4) / 2.0);
        assert!(derivative_flops(20, 4) < newview_flops(20, 4) / 2.0);
    }

    #[test]
    fn costs_scale_with_categories() {
        assert!((newview_flops(4, 8) / newview_flops(4, 4) - 2.0).abs() < 1e-12);
        assert!((evaluate_flops(4, 1) * 4.0 - evaluate_flops(4, 4)).abs() < 1e-12);
    }

    #[test]
    fn region_record_balance() {
        let mut r = RegionRecord::new(OpKind::Newview, 4);
        r.flops_per_worker = vec![100.0, 100.0, 100.0, 100.0];
        assert!((r.balance() - 1.0).abs() < 1e-12);
        r.flops_per_worker = vec![400.0, 0.0, 0.0, 0.0];
        assert!((r.balance() - 0.25).abs() < 1e-12);
        assert_eq!(r.max_flops(), 400.0);
        assert_eq!(r.total_flops(), 400.0);
    }

    #[test]
    fn trace_critical_path_and_balance() {
        let mut t = WorkTrace::new(2);
        let mut a = RegionRecord::new(OpKind::Newview, 2);
        a.flops_per_worker = vec![10.0, 10.0];
        let mut b = RegionRecord::new(OpKind::Derivatives, 2);
        b.flops_per_worker = vec![20.0, 0.0];
        t.regions.push(a);
        t.regions.push(b);
        assert_eq!(t.sync_events(), 2);
        assert_eq!(t.total_flops(), 40.0);
        assert_eq!(t.critical_path_flops(), 30.0);
        assert!((t.overall_balance() - 40.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_neutral() {
        let t = WorkTrace::new(8);
        assert_eq!(t.sync_events(), 0);
        assert_eq!(t.total_flops(), 0.0);
        assert!((t.overall_balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_worker_totals_sum_over_regions() {
        let mut t = WorkTrace::new(2);
        let mut a = RegionRecord::new(OpKind::Newview, 2);
        a.flops_per_worker = vec![10.0, 20.0];
        let mut b = RegionRecord::new(OpKind::Evaluate, 2);
        b.flops_per_worker = vec![1.0, 2.0];
        t.regions.push(a);
        t.regions.push(b);
        assert_eq!(t.flops_per_worker_total(), vec![11.0, 22.0]);
        assert_eq!(WorkTrace::new(3).flops_per_worker_total(), vec![0.0; 3]);
    }

    #[test]
    fn trace_extend_concatenates() {
        let mut a = WorkTrace::new(2);
        a.regions.push(RegionRecord::new(OpKind::Evaluate, 2));
        let mut b = WorkTrace::new(2);
        b.regions.push(RegionRecord::new(OpKind::Newview, 2));
        b.regions.push(RegionRecord::new(OpKind::Sumtable, 2));
        a.extend(&b).unwrap();
        assert_eq!(a.sync_events(), 3);
    }

    #[test]
    fn trace_extend_rejects_mismatched_worker_counts() {
        let mut a = WorkTrace::new(2);
        a.regions.push(RegionRecord::new(OpKind::Evaluate, 2));
        let mut b = WorkTrace::new(3);
        b.regions.push(RegionRecord::new(OpKind::Newview, 3));
        assert_eq!(
            a.extend(&b),
            Err(TraceError::WorkerMismatch {
                expected: 2,
                got: 3
            })
        );
        // The failed extend must leave the trace untouched.
        assert_eq!(a.sync_events(), 1);
        assert!(!TraceError::WorkerMismatch {
            expected: 2,
            got: 3
        }
        .to_string()
        .is_empty());
    }

    #[test]
    fn seconds_metrics_mirror_flops_metrics() {
        let mut t = WorkTrace::new(2);
        let mut a = RegionRecord::new(OpKind::Newview, 2);
        a.seconds_per_worker = vec![0.3, 0.1];
        let mut b = RegionRecord::new(OpKind::Evaluate, 2);
        b.seconds_per_worker = vec![0.1, 0.1];
        t.regions.push(a);
        t.regions.push(b);
        assert!(t.has_seconds());
        assert!((t.total_seconds() - 0.6).abs() < 1e-12);
        assert!((t.critical_path_in(TraceUnit::Seconds) - 0.4).abs() < 1e-12);
        assert!((t.overall_balance_in(TraceUnit::Seconds) - 0.6 / 0.8).abs() < 1e-12);
        assert_eq!(t.per_worker_total_in(TraceUnit::Seconds), vec![0.4, 0.2]);
        // The flops view of the same trace is empty and therefore neutral.
        assert_eq!(t.total_flops(), 0.0);
        assert!((t.overall_balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn masked_region_metrics_ignore_full_mask_regions() {
        let mut t = WorkTrace::new(2);
        // Full-mask region: perfectly balanced, must not enter masked stats.
        let mut full = RegionRecord::new(OpKind::Newview, 2);
        full.flops_per_worker = vec![10.0, 10.0];
        full.active_partitions = vec![true, true];
        // Masked region: all work on worker 0.
        let mut masked = RegionRecord::new(OpKind::Derivatives, 2);
        masked.flops_per_worker = vec![8.0, 0.0];
        masked.active_partitions = vec![true, false];
        masked.active_patterns_per_worker = vec![4.0, 0.0];
        // Unrecorded mask: counts as unmasked.
        let mut unknown = RegionRecord::new(OpKind::Evaluate, 2);
        unknown.flops_per_worker = vec![3.0, 3.0];

        assert!(!full.is_masked());
        assert!(masked.is_masked());
        assert!(!unknown.is_masked());

        t.regions.extend([full, masked, unknown]);
        assert_eq!(t.masked_region_count(), 1);
        assert_eq!(
            t.masked_per_worker_total_in(TraceUnit::Flops),
            vec![8.0, 0.0]
        );
        assert!((t.masked_overall_balance_in(TraceUnit::Flops) - 0.5).abs() < 1e-12);
        assert_eq!(t.live_patterns_per_worker_total(), vec![4.0, 0.0]);
        // A trace with no masked regions is neutral.
        assert!(
            (WorkTrace::new(2).masked_overall_balance_in(TraceUnit::Flops) - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn window_helpers_see_only_the_recent_regions() {
        let mut t = WorkTrace::new(2);
        let mut early = RegionRecord::new(OpKind::Newview, 2);
        early.flops_per_worker = vec![100.0, 100.0];
        early.active_partitions = vec![true, true];
        let mut late = RegionRecord::new(OpKind::Derivatives, 2);
        late.flops_per_worker = vec![5.0, 1.0];
        late.active_partitions = vec![false, true];
        t.regions.push(early);
        t.regions.push(late.clone());
        t.regions.push(late);

        // The masked window skips the balanced full-mask region entirely.
        assert_eq!(
            t.masked_window_per_worker_total_in(TraceUnit::Flops, 2),
            vec![10.0, 2.0]
        );
        assert_eq!(
            t.masked_window_per_worker_total_in(TraceUnit::Flops, 10),
            vec![10.0, 2.0]
        );
        assert_eq!(
            t.masked_window_active_partitions(2),
            Some(vec![false, true])
        );
        assert_eq!(t.recent_masked_regions(10).len(), 2);
        // No masked regions → None.
        let mut bare = WorkTrace::new(2);
        bare.regions.push(RegionRecord::new(OpKind::Newview, 2));
        assert_eq!(bare.masked_window_active_partitions(5), None);
    }

    #[test]
    fn decayed_window_weights_recent_regions_more() {
        let mut t = WorkTrace::new(2);
        let mut old = RegionRecord::new(OpKind::Newview, 2);
        old.flops_per_worker = vec![8.0, 0.0];
        old.active_partitions = vec![true, false];
        let mut new = RegionRecord::new(OpKind::Derivatives, 2);
        new.flops_per_worker = vec![0.0, 8.0];
        new.active_partitions = vec![false, true];
        t.regions.push(old);
        t.regions.push(new);

        // decay = 1.0 reproduces the plain equal-weight window exactly.
        assert_eq!(
            t.masked_window_decayed_per_worker_total_in(TraceUnit::Flops, 2, 1.0),
            t.masked_window_per_worker_total_in(TraceUnit::Flops, 2)
        );
        // decay = 0.5: the newest region weighs 1, the older one 0.5.
        assert_eq!(
            t.masked_window_decayed_per_worker_total_in(TraceUnit::Flops, 2, 0.5),
            vec![4.0, 8.0]
        );
        // Liveness vote at decay 0.5: the old region holds 1/3 of the weight,
        // so a 0.05 cutoff keeps partition 0 while a 0.4 cutoff drops it.
        assert_eq!(
            t.masked_window_decayed_active_partitions(2, 0.5, 0.05),
            Some(vec![true, true])
        );
        assert_eq!(
            t.masked_window_decayed_active_partitions(2, 0.5, 0.4),
            Some(vec![false, true])
        );
        // No masked regions → None, like the union helper.
        assert_eq!(
            WorkTrace::new(2).masked_window_decayed_active_partitions(4, 0.5, 0.05),
            None
        );
    }

    #[test]
    fn decayed_liveness_forgets_a_stale_partition_the_union_keeps() {
        // One ancient region with partition 0 live, then eleven regions where
        // only partition 1 is live: the trailing-window union keeps partition
        // 0 "live" for the whole window, while the decayed vote (decay 0.5,
        // cutoff 0.05) has long forgotten it.
        let mut t = WorkTrace::new(2);
        let mut stale = RegionRecord::new(OpKind::Newview, 2);
        stale.flops_per_worker = vec![4.0, 0.0];
        stale.active_partitions = vec![true, false];
        t.regions.push(stale);
        for _ in 0..11 {
            let mut r = RegionRecord::new(OpKind::Derivatives, 2);
            r.flops_per_worker = vec![0.0, 4.0];
            r.active_partitions = vec![false, true];
            t.regions.push(r);
        }
        assert_eq!(
            t.masked_window_active_partitions(12),
            Some(vec![true, true])
        );
        assert_eq!(
            t.masked_window_decayed_active_partitions(12, 0.5, 0.05),
            Some(vec![false, true])
        );
    }

    #[test]
    fn region_balance_per_unit() {
        let mut r = RegionRecord::new(OpKind::Derivatives, 4);
        r.seconds_per_worker = vec![0.4, 0.0, 0.0, 0.0];
        assert!((r.balance_in(TraceUnit::Seconds) - 0.25).abs() < 1e-12);
        assert!((r.balance_in(TraceUnit::Flops) - 1.0).abs() < 1e-12);
        assert_eq!(r.max_in(TraceUnit::Seconds), 0.4);
        assert_eq!(r.total_in(TraceUnit::Seconds), 0.4);
    }
}
