//! The numerical core of the likelihood kernel.
//!
//! All functions here operate on a *slice* (one worker's patterns of one
//! partition) and are completely independent of threading: the sequential
//! executor calls them on a single slice covering everything, the threaded
//! executor calls them concurrently on disjoint slices, and the instrumented
//! executor calls them per virtual worker while recording the work.
//!
//! * [`newview_step`] — recompute the conditional likelihood vector (CLV) of
//!   one internal node from its two children (Felsenstein pruning step),
//! * [`evaluate_edge`] — per-site log likelihoods summed over the slice for a
//!   virtual root placed on a branch,
//! * [`build_sumtable`] / [`derivatives_from_sumtable`] — the RAxML
//!   `makenewz` decomposition: a branch-specific sum table that makes every
//!   Newton–Raphson iteration on that branch a cheap per-pattern loop with
//!   analytic first and second derivatives.
//!
//! Each of `newview`/`evaluate` exists in two forms: the *per-call reference*
//! ([`newview_step`], [`evaluate_edge`]) that recomputes the per-category
//! transition matrices on every invocation, and the *table-based* form
//! ([`newview_step_tabled`], [`evaluate_edge_tabled`]) that reads shared
//! precomputed [`BranchTables`] (master-built transition matrices plus tip
//! lookup rows). The two agree bit for bit; the reference form stays as the
//! property-tested ground truth.
//!
//! All primitives are fallible: mismatched buffer shapes, stale sum tables
//! and out-of-domain branch lengths fail as typed [`OpError`]s on every build
//! profile (they used to be `debug_assert!`-only and silent in release).

use std::sync::Arc;

use phylo_data::EncodedState;
use phylo_models::PartitionModel;
use phylo_tree::{NodeId, TraversalStep};

use crate::error::OpError;
use crate::slice::{PartitionSlice, SliceBuffers, TIP_INDEX_NONE};
use crate::tables::{validate_branch_length, BranchTables, StepTables};
use crate::{LOG_SCALE_FACTOR, SCALE_FACTOR, SCALE_THRESHOLD};

/// Floor applied to per-site likelihoods before taking logarithms, so that a
/// fully impossible site (numerically zero) produces a very bad but finite
/// log likelihood instead of `-inf`.
pub(crate) const SITE_LIKELIHOOD_FLOOR: f64 = 1.0e-300;

/// Resolved child data used inside the inner loops.
pub(crate) enum ChildData<'a> {
    /// The child is a leaf; per-pattern tip states come from the slice.
    Tip(NodeId),
    /// The child is an internal node with a computed CLV and scale counters.
    Internal { clv: &'a [f64], scale: &'a [i32] },
}

pub(crate) fn child_data<'a>(
    slice: &PartitionSlice,
    buffers: &'a SliceBuffers,
    node: NodeId,
) -> Result<ChildData<'a>, OpError> {
    if node < slice.n_taxa {
        Ok(ChildData::Tip(node))
    } else {
        let clv = buffers.clv(node).ok_or(OpError::ClvMissing { node })?;
        let scale = buffers.scale(node).ok_or(OpError::ScaleMissing { node })?;
        Ok(ChildData::Internal { clv, scale })
    }
}

/// Per-(pattern, category) resolution of one child for the tabled kernels:
/// either a precomputed tip-lookup row, the raw tip mask (dictionary miss),
/// or the internal child's CLV for a dense inner product. Resolving once per
/// pattern keeps the inner state loop branch-free of `Option` plumbing — and
/// free of the "tip child must have a mask" invariant the old pair-matching
/// needed an `expect` for.
pub(crate) enum ResolvedChild<'a> {
    /// Tip whose mask is in the dictionary: direct per-category row lookup.
    Indexed(usize),
    /// Tip whose mask is outside the dictionary: per-call mask fallback.
    Mask(EncodedState),
    /// Internal child: dense inner product against its CLV.
    Clv(&'a [f64]),
}

/// [`ResolvedChild`] with the dictionary index swapped for the concrete tip
/// row of one rate category, so the innermost state loop is a total match.
pub(crate) enum CatChild<'a> {
    /// Precomputed tip-lookup row for this category.
    Row(&'a [f64]),
    /// Dictionary miss: sum transition probabilities over the mask per call.
    Mask(EncodedState),
    /// Internal child CLV.
    Clv(&'a [f64]),
}

impl<'a> ResolvedChild<'a> {
    /// Resolve the per-category form by looking the dictionary index up in
    /// this branch's tables.
    pub(crate) fn at_category(&self, tables: &'a BranchTables, c: usize) -> CatChild<'a> {
        match self {
            ResolvedChild::Indexed(mi) => CatChild::Row(tables.tip_row(c, *mi)),
            ResolvedChild::Mask(mask) => CatChild::Mask(*mask),
            ResolvedChild::Clv(clv) => CatChild::Clv(clv),
        }
    }
}

/// Sum of transition probabilities from state `s` into the states compatible
/// with the tip bitmask: `Σ_{a ∈ mask} P[s][a]`. One shared implementation
/// with the table builder ([`crate::tables`]) — the tabled kernels' exact
/// (bit-for-bit) agreement with this reference path rests on both summing in
/// the same ascending-bit order.
#[inline]
pub(crate) fn tip_sum(pmat_row: &[f64], mask: EncodedState) -> f64 {
    crate::tables::mask_sum(pmat_row, mask)
}

/// Per-category transition matrices for one branch — the per-call reference
/// path (the table-based kernels read shared [`BranchTables`] instead).
///
/// # Errors
///
/// [`OpError::InvalidBranchLength`] for a negative, NaN or infinite
/// `branch_length` (the kernel-boundary domain check; such values used to be
/// exponentiated without complaint).
pub(crate) fn category_pmats(
    model: &PartitionModel,
    branch_length: f64,
) -> Result<Vec<Vec<f64>>, OpError> {
    validate_branch_length(branch_length)?;
    let states = model.states();
    Ok(model
        .gamma_rates()
        .iter()
        .map(|&rate| {
            let mut buf = vec![0.0; states * states];
            model
                .substitution()
                .eigen()
                .transition_matrix_into(branch_length * rate, &mut buf);
            buf
        })
        .collect())
}

/// Release-mode guard: a shared table must have been built for this slice's
/// alphabet and category count. Tables from another partition's model would
/// index out of bounds (a worker-killing panic in a parallel backend) or,
/// worse, silently read the wrong sub-matrix rows.
pub(crate) fn check_table_dims(
    slice: &PartitionSlice,
    buffers: &SliceBuffers,
    tables: &BranchTables,
) -> Result<(), OpError> {
    if tables.states() != buffers.states() || tables.categories() != buffers.categories() {
        return Err(OpError::TableDims {
            partition: slice.partition,
            table: (tables.states(), tables.categories()),
            buffers: (buffers.states(), buffers.categories()),
        });
    }
    Ok(())
}

/// Release-mode guard: the buffers must have been allocated for the same
/// alphabet and category count as the model the op runs under. A mismatch
/// means buffers were recycled across partitions without reallocation — the
/// indexing below would read the wrong strides silently.
pub(crate) fn check_buffer_dims(
    slice: &PartitionSlice,
    buffers: &SliceBuffers,
    states: usize,
    categories: usize,
) -> Result<(), OpError> {
    if buffers.states() != states || buffers.categories() != categories {
        return Err(OpError::BufferDims {
            partition: slice.partition,
            expected: (states, categories),
            got: (buffers.states(), buffers.categories()),
        });
    }
    Ok(())
}

/// The release-mode guard against stale buffers: a slice and its buffers must
/// agree on the local pattern count (they can drift apart when a mid-run
/// migration rebuilds one but not the other).
pub(crate) fn check_slice_shape(
    slice: &PartitionSlice,
    buffers: &SliceBuffers,
) -> Result<(), OpError> {
    if buffers.patterns() != slice.pattern_count() {
        return Err(OpError::SliceShape {
            partition: slice.partition,
            buffer_patterns: buffers.patterns(),
            slice_patterns: slice.pattern_count(),
        });
    }
    Ok(())
}

/// Recomputes the CLV of `step.node` for every local pattern of the slice.
///
/// `left_length` / `right_length` are the branch lengths towards the two
/// children *as seen by this partition* (per-partition branch lengths differ
/// between partitions).
///
/// # Errors
///
/// [`OpError::InvalidBranchLength`] for out-of-domain branch lengths,
/// [`OpError::SliceShape`] when the buffers do not match the slice.
pub fn newview_step(
    slice: &PartitionSlice,
    buffers: &mut SliceBuffers,
    model: &PartitionModel,
    step: &TraversalStep,
    left_length: f64,
    right_length: f64,
) -> Result<(), OpError> {
    let states = slice.states();
    let categories = model.categories();
    let patterns = slice.pattern_count();
    check_slice_shape(slice, buffers)?;
    check_buffer_dims(slice, buffers, states, categories)?;

    let left_pmats = category_pmats(model, left_length)?;
    let right_pmats = category_pmats(model, right_length)?;

    // Validate child presence before detaching the target node's buffers, so
    // a rejected step leaves the buffer store untouched.
    child_data(slice, buffers, step.left)?;
    child_data(slice, buffers, step.right)?;

    let (mut clv, mut scale) = buffers.take_node(step.node);
    clv.resize(patterns * categories * states, 0.0);
    scale.resize(patterns, 0);

    {
        let left = child_data(slice, buffers, step.left)?;
        let right = child_data(slice, buffers, step.right)?;

        for p in 0..patterns {
            let mut max_entry = 0.0f64;
            for c in 0..categories {
                let lp = &left_pmats[c];
                let rp = &right_pmats[c];
                let base = (p * categories + c) * states;
                for s in 0..states {
                    let row = s * states;
                    let left_sum = match &left {
                        ChildData::Tip(t) => {
                            tip_sum(&lp[row..row + states], slice.tip_state(p, *t))
                        }
                        ChildData::Internal { clv: child, .. } => {
                            let cbase = (p * categories + c) * states;
                            let mut acc = 0.0;
                            for a in 0..states {
                                acc += lp[row + a] * child[cbase + a];
                            }
                            acc
                        }
                    };
                    let right_sum = match &right {
                        ChildData::Tip(t) => {
                            tip_sum(&rp[row..row + states], slice.tip_state(p, *t))
                        }
                        ChildData::Internal { clv: child, .. } => {
                            let cbase = (p * categories + c) * states;
                            let mut acc = 0.0;
                            for a in 0..states {
                                acc += rp[row + a] * child[cbase + a];
                            }
                            acc
                        }
                    };
                    let value = left_sum * right_sum;
                    clv[base + s] = value;
                    if value > max_entry {
                        max_entry = value;
                    }
                }
            }

            // Inherit scaling events from the children and rescale if the
            // pattern is about to underflow.
            let mut events = 0;
            if let ChildData::Internal { scale: s, .. } = &left {
                events += s[p];
            }
            if let ChildData::Internal { scale: s, .. } = &right {
                events += s[p];
            }
            if max_entry < SCALE_THRESHOLD && max_entry > 0.0 {
                let base = p * categories * states;
                for v in &mut clv[base..base + categories * states] {
                    *v *= SCALE_FACTOR;
                }
                events += 1;
            }
            scale[p] = events;
        }
    }

    buffers.put_back(step.node, clv, scale)
}

/// The table-based counterpart of [`newview_step`]: reads the two children's
/// shared [`BranchTables`] (master-precomputed transition matrices and tip
/// lookup rows) instead of recomputing per call. Agrees with the reference
/// bit for bit.
///
/// # Errors
///
/// [`OpError::SliceShape`] when the buffers do not match the slice.
pub fn newview_step_tabled(
    slice: &PartitionSlice,
    buffers: &mut SliceBuffers,
    step: &TraversalStep,
    tables: &StepTables,
) -> Result<(), OpError> {
    let states = slice.states();
    let left_tables = &*tables.left;
    let right_tables = &*tables.right;
    let patterns = slice.pattern_count();
    check_slice_shape(slice, buffers)?;
    check_table_dims(slice, buffers, left_tables)?;
    check_table_dims(slice, buffers, right_tables)?;
    let categories = left_tables.categories();
    check_buffer_dims(slice, buffers, states, categories)?;

    // Per-slice tip-index cache: every `(pattern, taxon)` mask is translated
    // to its dictionary index once per slice lifetime, not once per call —
    // the per-pattern binary search was the protein-partition hot spot. Both
    // children share the partition's dictionary in practice; a right child
    // with a different dictionary falls back to searching per pattern.
    let left_is_tip = step.left < slice.n_taxa;
    let right_is_tip = step.right < slice.n_taxa;
    let right_cached = Arc::ptr_eq(left_tables.dict_arc(), right_tables.dict_arc());
    if left_is_tip || (right_is_tip && right_cached) {
        buffers.tip_indices(slice, left_tables.dict_arc());
    }

    // Validate child presence before detaching the target node's buffers, so
    // a rejected step leaves the buffer store untouched.
    child_data(slice, buffers, step.left)?;
    child_data(slice, buffers, step.right)?;

    let (mut clv, mut scale) = buffers.take_node(step.node);
    clv.resize(patterns * categories * states, 0.0);
    scale.resize(patterns, 0);

    {
        let tip_idx = buffers.cached_tip_indices();
        let n_taxa = slice.n_taxa;
        let left = child_data(slice, buffers, step.left)?;
        let right = child_data(slice, buffers, step.right)?;

        for p in 0..patterns {
            // One cache read per (pattern, tip child), hoisted out of the
            // category/state loops; a mask outside the dictionary resolves
            // to the per-call fallback.
            let left_res = match &left {
                ChildData::Tip(t) => {
                    let mask = slice.tip_state(p, *t);
                    let mi = tip_idx[p * n_taxa + *t];
                    if mi != TIP_INDEX_NONE {
                        ResolvedChild::Indexed(mi as usize)
                    } else {
                        ResolvedChild::Mask(mask)
                    }
                }
                ChildData::Internal { clv: child, .. } => ResolvedChild::Clv(child),
            };
            let right_res = match &right {
                ChildData::Tip(t) => {
                    let mask = slice.tip_state(p, *t);
                    let index = if right_cached {
                        let mi = tip_idx[p * n_taxa + *t];
                        (mi != TIP_INDEX_NONE).then_some(mi as usize)
                    } else {
                        right_tables.dict().index_of(mask)
                    };
                    match index {
                        Some(mi) => ResolvedChild::Indexed(mi),
                        None => ResolvedChild::Mask(mask),
                    }
                }
                ChildData::Internal { clv: child, .. } => ResolvedChild::Clv(child),
            };

            let mut max_entry = 0.0f64;
            for c in 0..categories {
                let lp = left_tables.pmat(c);
                let rp = right_tables.pmat(c);
                let left_cat = left_res.at_category(left_tables, c);
                let right_cat = right_res.at_category(right_tables, c);
                let base = (p * categories + c) * states;
                for s in 0..states {
                    let row = s * states;
                    let left_sum = match &left_cat {
                        CatChild::Row(tip_row) => tip_row[s],
                        CatChild::Mask(mask) => tip_sum(&lp[row..row + states], *mask),
                        CatChild::Clv(child) => {
                            let cbase = (p * categories + c) * states;
                            let mut acc = 0.0;
                            for a in 0..states {
                                acc += lp[row + a] * child[cbase + a];
                            }
                            acc
                        }
                    };
                    let right_sum = match &right_cat {
                        CatChild::Row(tip_row) => tip_row[s],
                        CatChild::Mask(mask) => tip_sum(&rp[row..row + states], *mask),
                        CatChild::Clv(child) => {
                            let cbase = (p * categories + c) * states;
                            let mut acc = 0.0;
                            for a in 0..states {
                                acc += rp[row + a] * child[cbase + a];
                            }
                            acc
                        }
                    };
                    let value = left_sum * right_sum;
                    clv[base + s] = value;
                    if value > max_entry {
                        max_entry = value;
                    }
                }
            }

            let mut events = 0;
            if let ChildData::Internal { scale: s, .. } = &left {
                events += s[p];
            }
            if let ChildData::Internal { scale: s, .. } = &right {
                events += s[p];
            }
            if max_entry < SCALE_THRESHOLD && max_entry > 0.0 {
                let base = p * categories * states;
                for v in &mut clv[base..base + categories * states] {
                    *v *= SCALE_FACTOR;
                }
                events += 1;
            }
            scale[p] = events;
        }
    }

    let mut cached_lookups = 0u64;
    if left_is_tip {
        cached_lookups += patterns as u64;
    }
    if right_is_tip && right_cached {
        cached_lookups += patterns as u64;
    }
    if cached_lookups > 0 {
        buffers.count_tip_hits(cached_lookups);
    }

    buffers.put_back(step.node, clv, scale)
}

/// Evaluates the weighted log likelihood of the slice for a virtual root
/// placed on the branch between `left` and `right` with length
/// `branch_length`, using the partition's stationary frequencies.
///
/// Returns the sum over the local patterns of `weight × ln L(pattern)`.
///
/// # Errors
///
/// [`OpError::InvalidBranchLength`] for out-of-domain branch lengths,
/// [`OpError::SliceShape`] when the buffers do not match the slice.
pub fn evaluate_edge(
    slice: &PartitionSlice,
    buffers: &SliceBuffers,
    model: &PartitionModel,
    left: NodeId,
    right: NodeId,
    branch_length: f64,
) -> Result<f64, OpError> {
    let states = slice.states();
    let categories = model.categories();
    let patterns = slice.pattern_count();
    check_slice_shape(slice, buffers)?;
    let freqs = model.substitution().frequencies();
    let pmats = category_pmats(model, branch_length)?;
    let inv_categories = 1.0 / categories as f64;

    let left_data = child_data(slice, buffers, left)?;
    let right_data = child_data(slice, buffers, right)?;

    let mut total = 0.0;
    for p in 0..patterns {
        let mut site = 0.0;
        for (c, pm) in pmats.iter().enumerate() {
            let base = (p * categories + c) * states;
            let mut cat_sum = 0.0;
            for s in 0..states {
                let l_val = match &left_data {
                    ChildData::Tip(t) => {
                        if slice.tip_state(p, *t) & (1 << s) != 0 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    ChildData::Internal { clv, .. } => clv[base + s],
                };
                if l_val == 0.0 {
                    continue;
                }
                let row = s * states;
                let inner = match &right_data {
                    ChildData::Tip(t) => tip_sum(&pm[row..row + states], slice.tip_state(p, *t)),
                    ChildData::Internal { clv, .. } => {
                        let mut acc = 0.0;
                        for a in 0..states {
                            acc += pm[row + a] * clv[base + a];
                        }
                        acc
                    }
                };
                cat_sum += freqs[s] * l_val * inner;
            }
            site += cat_sum * inv_categories;
        }
        let mut events = 0;
        if let ChildData::Internal { scale, .. } = &left_data {
            events += scale[p];
        }
        if let ChildData::Internal { scale, .. } = &right_data {
            events += scale[p];
        }
        let ln_site = site.max(SITE_LIKELIHOOD_FLOOR).ln() - events as f64 * LOG_SCALE_FACTOR;
        total += slice.weights[p] * ln_site;
    }
    Ok(total)
}

/// The table-based counterpart of [`evaluate_edge`]: the virtual-root
/// transition matrices and the tip sums of the right child come from the
/// branch's shared [`BranchTables`]. Agrees with the reference bit for bit.
///
/// # Errors
///
/// [`OpError::SliceShape`] when the buffers do not match the slice.
pub fn evaluate_edge_tabled(
    slice: &PartitionSlice,
    buffers: &mut SliceBuffers,
    model: &PartitionModel,
    left: NodeId,
    right: NodeId,
    tables: &BranchTables,
) -> Result<f64, OpError> {
    let states = slice.states();
    let patterns = slice.pattern_count();
    check_slice_shape(slice, buffers)?;
    check_table_dims(slice, buffers, tables)?;
    let categories = tables.categories();
    let freqs = model.substitution().frequencies();
    let inv_categories = 1.0 / categories as f64;

    // Same per-slice tip-index cache as `newview_step_tabled`; only the
    // right child's inner products are table-backed here.
    let right_is_tip = right < slice.n_taxa;
    if right_is_tip {
        buffers.tip_indices(slice, tables.dict_arc());
    }
    let buffers = &*buffers;
    let tip_idx = buffers.cached_tip_indices();
    let n_taxa = slice.n_taxa;

    let left_data = child_data(slice, buffers, left)?;
    let right_data = child_data(slice, buffers, right)?;

    let mut total = 0.0;
    for p in 0..patterns {
        // Hoisted cache read for a right tip child (the side whose inner
        // products the tables replace).
        let right_res = match &right_data {
            ChildData::Tip(t) => {
                let mask = slice.tip_state(p, *t);
                let mi = tip_idx[p * n_taxa + *t];
                if mi != TIP_INDEX_NONE {
                    ResolvedChild::Indexed(mi as usize)
                } else {
                    ResolvedChild::Mask(mask)
                }
            }
            ChildData::Internal { clv, .. } => ResolvedChild::Clv(clv),
        };
        let mut site = 0.0;
        for c in 0..categories {
            let pm = tables.pmat(c);
            let right_cat = right_res.at_category(tables, c);
            let base = (p * categories + c) * states;
            let mut cat_sum = 0.0;
            for s in 0..states {
                let l_val = match &left_data {
                    ChildData::Tip(t) => {
                        if slice.tip_state(p, *t) & (1 << s) != 0 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    ChildData::Internal { clv, .. } => clv[base + s],
                };
                if l_val == 0.0 {
                    continue;
                }
                let row = s * states;
                let inner = match &right_cat {
                    CatChild::Row(tip_row) => tip_row[s],
                    CatChild::Mask(mask) => tip_sum(&pm[row..row + states], *mask),
                    CatChild::Clv(clv) => {
                        let mut acc = 0.0;
                        for a in 0..states {
                            acc += pm[row + a] * clv[base + a];
                        }
                        acc
                    }
                };
                cat_sum += freqs[s] * l_val * inner;
            }
            site += cat_sum * inv_categories;
        }
        let mut events = 0;
        if let ChildData::Internal { scale, .. } = &left_data {
            events += scale[p];
        }
        if let ChildData::Internal { scale, .. } = &right_data {
            events += scale[p];
        }
        let ln_site = site.max(SITE_LIKELIHOOD_FLOOR).ln() - events as f64 * LOG_SCALE_FACTOR;
        total += slice.weights[p] * ln_site;
    }
    if right_is_tip {
        buffers.count_tip_hits(patterns as u64);
    }
    Ok(total)
}

/// Builds the branch sum table for the branch between `left` and `right`.
///
/// For every local pattern `p` and rate category `c` the table stores
/// `s_k = (Wᵀ l)_k · (Wᵀ r)_k`, where `W = diag(√π)·V` comes from the model's
/// eigendecomposition. With the table in place the likelihood of the branch as
/// a function of its length `t` is `Σ_k s_k · e^{λ_k r_c t}` per category, so
/// each Newton–Raphson iteration only needs [`derivatives_from_sumtable`] and
/// never touches the CLVs again.
pub fn build_sumtable(
    slice: &PartitionSlice,
    buffers: &mut SliceBuffers,
    model: &PartitionModel,
    left: NodeId,
    right: NodeId,
) -> Result<(), OpError> {
    let states = slice.states();
    let categories = model.categories();
    let patterns = slice.pattern_count();
    check_slice_shape(slice, buffers)?;
    let w = &model.substitution().eigen().w;

    // Validate child presence before clearing the sum table, so a rejected
    // build leaves any previously valid table untouched.
    child_data(slice, buffers, left)?;
    child_data(slice, buffers, right)?;

    let (mut table, mut table_scale) = {
        let (t, s) = buffers.sumtable_mut();
        (std::mem::take(t), std::mem::take(s))
    };
    table.clear();
    table.resize(patterns * categories * states, 0.0);
    table_scale.clear();
    table_scale.resize(patterns, 0);

    {
        let left_data = child_data(slice, buffers, left)?;
        let right_data = child_data(slice, buffers, right)?;
        let mut l_vec = vec![0.0; states];
        let mut r_vec = vec![0.0; states];

        for p in 0..patterns {
            for c in 0..categories {
                let base = (p * categories + c) * states;
                for s in 0..states {
                    l_vec[s] = match &left_data {
                        ChildData::Tip(t) => {
                            if slice.tip_state(p, *t) & (1 << s) != 0 {
                                1.0
                            } else {
                                0.0
                            }
                        }
                        ChildData::Internal { clv, .. } => clv[base + s],
                    };
                    r_vec[s] = match &right_data {
                        ChildData::Tip(t) => {
                            if slice.tip_state(p, *t) & (1 << s) != 0 {
                                1.0
                            } else {
                                0.0
                            }
                        }
                        ChildData::Internal { clv, .. } => clv[base + s],
                    };
                }
                for k in 0..states {
                    let mut a = 0.0;
                    let mut b = 0.0;
                    for s in 0..states {
                        let wsk = w[(s, k)];
                        a += wsk * l_vec[s];
                        b += wsk * r_vec[s];
                    }
                    table[base + k] = a * b;
                }
            }
            let mut events = 0;
            if let ChildData::Internal { scale, .. } = &left_data {
                events += scale[p];
            }
            if let ChildData::Internal { scale, .. } = &right_data {
                events += scale[p];
            }
            table_scale[p] = events;
        }
    }

    let (t, s) = buffers.sumtable_mut();
    *t = table;
    *s = table_scale;
    Ok(())
}

/// Result of one derivative evaluation over a slice.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EdgeDerivatives {
    /// Weighted log likelihood of the slice at the evaluated branch length.
    pub log_likelihood: f64,
    /// First derivative of the weighted log likelihood w.r.t. the branch length.
    pub first: f64,
    /// Second derivative of the weighted log likelihood w.r.t. the branch length.
    pub second: f64,
}

/// Evaluates the log likelihood and its first two derivatives with respect to
/// the branch length `t`, using the sum table previously built for this branch
/// by [`build_sumtable`].
///
/// Sites whose likelihood underflowed to the floor contribute the floored
/// log likelihood but **zero** derivatives: dividing the raw `f'`/`f''` by
/// the floor would explode the ratios by hundreds of orders of magnitude and
/// drive Newton–Raphson to NaN or divergent steps on long branches.
///
/// # Errors
///
/// [`OpError::SumtableStale`] when the sum table does not match the slice
/// shape — it is missing, or left over from before a reassignment changed the
/// local pattern count (this was a release-mode `debug_assert!` hole);
/// [`OpError::InvalidBranchLength`] for an out-of-domain `t`.
pub fn derivatives_from_sumtable(
    slice: &PartitionSlice,
    buffers: &SliceBuffers,
    model: &PartitionModel,
    t: f64,
) -> Result<EdgeDerivatives, OpError> {
    validate_branch_length(t)?;
    let states = slice.states();
    let categories = model.categories();
    let patterns = slice.pattern_count();
    check_slice_shape(slice, buffers)?;
    let table = buffers.sumtable();
    let table_scale = buffers.sumtable_scale();
    if table.len() != patterns * categories * states {
        return Err(OpError::SumtableStale {
            expected: patterns * categories * states,
            got: table.len(),
        });
    }
    if table_scale.len() != patterns {
        return Err(OpError::SumtableStale {
            expected: patterns,
            got: table_scale.len(),
        });
    }
    let eigenvalues = &model.substitution().eigen().values;
    let rates = model.gamma_rates();
    let inv_categories = 1.0 / categories as f64;

    // Pre-compute e^{λ_k r_c t}, λ_k r_c and (λ_k r_c)² for every (c, k).
    let mut exps = vec![0.0; categories * states];
    let mut lam1 = vec![0.0; categories * states];
    for c in 0..categories {
        for k in 0..states {
            let lr = eigenvalues[k] * rates[c];
            exps[c * states + k] = (lr * t).exp();
            lam1[c * states + k] = lr;
        }
    }

    let mut out = EdgeDerivatives::default();
    for (p, &scale_events) in table_scale.iter().enumerate().take(patterns) {
        let mut f = 0.0;
        let mut f1 = 0.0;
        let mut f2 = 0.0;
        for c in 0..categories {
            let base = (p * categories + c) * states;
            let ebase = c * states;
            for k in 0..states {
                let x = table[base + k] * exps[ebase + k];
                let lr = lam1[ebase + k];
                f += x;
                f1 += lr * x;
                f2 += lr * lr * x;
            }
        }
        f *= inv_categories;
        f1 *= inv_categories;
        f2 *= inv_categories;

        let w = slice.weights[p];
        let site = f.max(SITE_LIKELIHOOD_FLOOR);
        // A floored site sits on a numerically flat stretch of the likelihood
        // surface: its true per-site derivatives are below the floating-point
        // horizon, while `f1 / floor` would be astronomically large.
        let (ratio1, ratio2) = if f > SITE_LIKELIHOOD_FLOOR {
            (f1 / site, f2 / site)
        } else {
            (0.0, 0.0)
        };
        out.log_likelihood += w * (site.ln() - scale_events as f64 * LOG_SCALE_FACTOR);
        out.first += w * ratio1;
        out.second += w * (ratio2 - ratio1 * ratio1);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_data::{Alignment, DataType, PartitionSet, PartitionedPatterns};
    use phylo_models::{BranchLengthMode, ModelSet};
    use phylo_tree::{TraversalPlan, Tree};

    use crate::slice::WorkerSlices;

    /// Three-taxon fixture: one internal node, three branches.
    fn three_taxon() -> (PartitionedPatterns, Tree) {
        let aln = Alignment::new(vec![
            ("t0".into(), "ACGTTA".into()),
            ("t1".into(), "ACGTCA".into()),
            ("t2".into(), "ACGATA".into()),
        ])
        .unwrap();
        let ps = PartitionSet::unpartitioned(DataType::Dna, 6);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let tree = Tree::initial_triplet(pp.taxa.clone(), [0, 1, 2]);
        (pp, tree)
    }

    fn setup(pp: &PartitionedPatterns, tree: &Tree, categories: usize) -> (WorkerSlices, ModelSet) {
        let models = ModelSet::with_categories(pp, BranchLengthMode::Joint, categories);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let ws = WorkerSlices::cyclic(pp, 0, 1, tree.node_capacity(), &cats);
        (ws, models)
    }

    /// Direct (brute force) likelihood of the 3-taxon tree summing over the
    /// internal node's states, used as an independent reference.
    fn brute_force_three_taxon(pp: &PartitionedPatterns, tree: &Tree, models: &ModelSet) -> f64 {
        let part = &pp.partitions[0];
        let model = models.model(0);
        let freqs = model.substitution().frequencies();
        let states = 4usize;
        let center = 3usize;
        let mut total = 0.0;
        for p in 0..part.pattern_count() {
            let mut site = 0.0;
            for (ci, &rate) in model.gamma_rates().iter().enumerate() {
                let _ = ci;
                let mut cat = 0.0;
                // P matrices per pendant branch for this category.
                let pmats: Vec<_> = (0..3)
                    .map(|leaf| {
                        let b = tree.branch_between(center, leaf).unwrap();
                        model
                            .substitution()
                            .transition_matrix(tree.branch_length(b) * rate)
                    })
                    .collect();
                for x in 0..states {
                    let mut prod = freqs[x];
                    for (leaf, pm) in pmats.iter().enumerate() {
                        let mask = part.tip_state(p, leaf);
                        let mut s = 0.0;
                        for a in 0..states {
                            if mask & (1 << a) != 0 {
                                s += pm[(x, a)];
                            }
                        }
                        prod *= s;
                    }
                    cat += prod;
                }
                site += cat / model.categories() as f64;
            }
            total += part.weights[p] * site.ln();
        }
        total
    }

    fn full_newview(ws: &mut WorkerSlices, tree: &Tree, models: &ModelSet, root_branch: usize) {
        let plan = TraversalPlan::full(tree, root_branch);
        for step in &plan.steps {
            let slice = &ws.slices[0];
            let model = models.model(0);
            newview_step(
                slice,
                &mut ws.buffers[0],
                model,
                step,
                tree.branch_length(step.left_branch),
                tree.branch_length(step.right_branch),
            )
            .unwrap();
        }
    }

    #[test]
    fn scale_constant_is_consistent() {
        assert!((SCALE_FACTOR.ln() - LOG_SCALE_FACTOR).abs() < 1e-12);
        assert!((SCALE_THRESHOLD * SCALE_FACTOR - 1.0).abs() < 1e-12);
    }

    #[test]
    fn three_taxon_likelihood_matches_brute_force_single_category() {
        let (pp, tree) = three_taxon();
        let (mut ws, models) = setup(&pp, &tree, 1);
        // Root on the pendant branch of leaf 0.
        let root_branch = tree.branch_between(0, 3).unwrap();
        full_newview(&mut ws, &tree, &models, root_branch);
        let lnl = evaluate_edge(
            &ws.slices[0],
            &ws.buffers[0],
            models.model(0),
            0,
            3,
            tree.branch_length(root_branch),
        )
        .unwrap();
        let reference = brute_force_three_taxon(&pp, &tree, &models);
        assert!(
            (lnl - reference).abs() < 1e-9,
            "kernel {lnl} vs brute force {reference}"
        );
        assert!(lnl < 0.0, "log likelihood must be negative");
    }

    #[test]
    fn three_taxon_likelihood_matches_brute_force_gamma() {
        let (pp, tree) = three_taxon();
        let (mut ws, models) = setup(&pp, &tree, 4);
        let root_branch = tree.branch_between(1, 3).unwrap();
        full_newview(&mut ws, &tree, &models, root_branch);
        let lnl = evaluate_edge(
            &ws.slices[0],
            &ws.buffers[0],
            models.model(0),
            1,
            3,
            tree.branch_length(root_branch),
        )
        .unwrap();
        let reference = brute_force_three_taxon(&pp, &tree, &models);
        assert!(
            (lnl - reference).abs() < 1e-9,
            "kernel {lnl} vs reference {reference}"
        );
    }

    #[test]
    fn likelihood_is_invariant_to_root_placement() {
        let (pp, tree) = three_taxon();
        let (mut ws, models) = setup(&pp, &tree, 4);
        let mut values = Vec::new();
        for root_branch in tree.branches() {
            full_newview(&mut ws, &tree, &models, root_branch);
            let (a, b) = tree.branch_endpoints(root_branch);
            let lnl = evaluate_edge(
                &ws.slices[0],
                &ws.buffers[0],
                models.model(0),
                a,
                b,
                tree.branch_length(root_branch),
            )
            .unwrap();
            values.push(lnl);
        }
        for v in &values[1..] {
            assert!(
                (v - values[0]).abs() < 1e-9,
                "root invariance violated: {values:?}"
            );
        }
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let (pp, tree) = three_taxon();
        let (mut ws, models) = setup(&pp, &tree, 4);
        let root_branch = tree.branch_between(2, 3).unwrap();
        full_newview(&mut ws, &tree, &models, root_branch);
        build_sumtable(&ws.slices[0], &mut ws.buffers[0], models.model(0), 2, 3).unwrap();

        let f = |t: f64| {
            evaluate_edge(&ws.slices[0], &ws.buffers[0], models.model(0), 2, 3, t).unwrap()
        };
        for &t in &[0.02, 0.1, 0.3, 0.8] {
            let d = derivatives_from_sumtable(&ws.slices[0], &ws.buffers[0], models.model(0), t)
                .unwrap();
            // The sum-table log likelihood must agree with evaluate_edge.
            assert!(
                (d.log_likelihood - f(t)).abs() < 1e-8,
                "lnL mismatch at t={t}"
            );
            let h = 1e-6;
            let fd1 = (f(t + h) - f(t - h)) / (2.0 * h);
            let fd2 = (f(t + h) - 2.0 * f(t) + f(t - h)) / (h * h);
            assert!(
                (d.first - fd1).abs() < 1e-4 * (1.0 + fd1.abs()),
                "first derivative at t={t}: analytic {} vs fd {fd1}",
                d.first
            );
            assert!(
                (d.second - fd2).abs() < 1e-2 * (1.0 + fd2.abs()),
                "second derivative at t={t}: analytic {} vs fd {fd2}",
                d.second
            );
        }
    }

    #[test]
    fn tabled_kernels_agree_with_the_per_call_reference_bit_for_bit() {
        use crate::tables::{BranchTables, MaskDictionary, StepTables};
        use std::sync::Arc;

        let (pp, tree) = three_taxon();
        let (mut ws_ref, models) = setup(&pp, &tree, 4);
        let (mut ws_tab, _) = setup(&pp, &tree, 4);
        let model = models.model(0);
        let dict = Arc::new(MaskDictionary::for_partition(
            pp.partitions[0].data_type,
            &pp.partitions[0].tip_states,
        ));

        let root_branch = tree.branch_between(0, 3).unwrap();
        let plan = TraversalPlan::full(&tree, root_branch);
        for step in &plan.steps {
            newview_step(
                &ws_ref.slices[0],
                &mut ws_ref.buffers[0],
                model,
                step,
                tree.branch_length(step.left_branch),
                tree.branch_length(step.right_branch),
            )
            .unwrap();
            let tables = StepTables {
                left: Arc::new(
                    BranchTables::build(model, &dict, tree.branch_length(step.left_branch))
                        .unwrap(),
                ),
                right: Arc::new(
                    BranchTables::build(model, &dict, tree.branch_length(step.right_branch))
                        .unwrap(),
                ),
            };
            newview_step_tabled(&ws_tab.slices[0], &mut ws_tab.buffers[0], step, &tables).unwrap();
            // The CLVs agree exactly, not just to tolerance.
            assert_eq!(
                ws_ref.buffers[0].clv(step.node),
                ws_tab.buffers[0].clv(step.node)
            );
        }

        let t = tree.branch_length(root_branch);
        let reference =
            evaluate_edge(&ws_ref.slices[0], &ws_ref.buffers[0], model, 0, 3, t).unwrap();
        let edge_tables = BranchTables::build(model, &dict, t).unwrap();
        let tabled = evaluate_edge_tabled(
            &ws_tab.slices[0],
            &mut ws_tab.buffers[0],
            model,
            0,
            3,
            &edge_tables,
        )
        .unwrap();
        assert_eq!(reference, tabled);
    }

    #[test]
    fn mismatched_table_dimensions_are_typed_errors() {
        use crate::tables::{BranchTables, MaskDictionary, StepTables};
        use phylo_models::PartitionModel;
        use std::sync::Arc;

        let (pp, tree) = three_taxon();
        let (mut ws, models) = setup(&pp, &tree, 4);
        let root_branch = tree.branch_between(0, 3).unwrap();
        full_newview(&mut ws, &tree, &models, root_branch);

        // Tables built from a protein model applied to a DNA slice: a typed
        // error on every build profile, not an out-of-bounds worker panic
        // (or silently wrong sub-matrix reads).
        let protein = PartitionModel::default_for(DataType::Protein);
        let dict = Arc::new(MaskDictionary::for_partition(DataType::Protein, &[]));
        let tables = Arc::new(BranchTables::build(&protein, &dict, 0.1).unwrap());
        let err = evaluate_edge_tabled(
            &ws.slices[0],
            &mut ws.buffers[0],
            models.model(0),
            0,
            3,
            &tables,
        )
        .unwrap_err();
        assert!(matches!(err, OpError::TableDims { .. }), "{err}");

        let step = TraversalPlan::full(&tree, root_branch).steps[0];
        let st = StepTables {
            left: Arc::clone(&tables),
            right: tables,
        };
        let err = newview_step_tabled(&ws.slices[0], &mut ws.buffers[0], &step, &st).unwrap_err();
        assert!(matches!(err, OpError::TableDims { .. }), "{err}");
    }

    #[test]
    fn floored_sites_contribute_clamped_derivatives() {
        // Zero the sum table by hand: every site's f underflows to the
        // floor, which used to blow ratio1/ratio2 up by ~300 orders of
        // magnitude (f1 / 1e-300) and drive Newton to NaN.
        let (pp, tree) = three_taxon();
        let (mut ws, models) = setup(&pp, &tree, 4);
        let root_branch = tree.branch_between(2, 3).unwrap();
        full_newview(&mut ws, &tree, &models, root_branch);
        build_sumtable(&ws.slices[0], &mut ws.buffers[0], models.model(0), 2, 3).unwrap();
        {
            let (table, _) = ws.buffers[0].sumtable_mut();
            for v in table.iter_mut() {
                *v = 0.0;
            }
        }
        let d =
            derivatives_from_sumtable(&ws.slices[0], &ws.buffers[0], models.model(0), 0.3).unwrap();
        assert!(d.log_likelihood.is_finite());
        assert!(d.log_likelihood < -100.0, "floored sites are very bad");
        assert_eq!(d.first, 0.0, "floored sites must not push Newton");
        assert_eq!(d.second, 0.0);
    }

    #[test]
    fn long_branch_derivatives_stay_finite_for_newton() {
        // The long-branch regression: a saturated deep caterpillar with
        // every branch at the maximum length underflows many sites; the
        // derivatives across a whole probe grid must stay finite so a
        // Newton iteration can never be fed NaN.
        let n = 260usize;
        let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let rows: Vec<(String, String)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                (
                    n.clone(),
                    if i % 2 == 0 {
                        "ACGT".to_string()
                    } else {
                        "TGCA".to_string()
                    },
                )
            })
            .collect();
        let aln = Alignment::new(rows).unwrap();
        let ps = PartitionSet::unpartitioned(DataType::Dna, 4);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let order: Vec<usize> = (0..n).collect();
        let mut tree = Tree::stepwise(names, &order, |b| b - 1);
        for b in tree.branches().collect::<Vec<_>>() {
            tree.set_branch_length(b, 10.0);
        }
        let (mut ws, models) = setup(&pp, &tree, 4);
        let root_branch = 0;
        full_newview(&mut ws, &tree, &models, root_branch);
        let (a, b) = tree.branch_endpoints(root_branch);
        build_sumtable(&ws.slices[0], &mut ws.buffers[0], models.model(0), a, b).unwrap();
        for &t in &[1e-8, 1e-3, 0.1, 1.0, 5.0, 10.0] {
            let d = derivatives_from_sumtable(&ws.slices[0], &ws.buffers[0], models.model(0), t)
                .unwrap();
            assert!(
                d.log_likelihood.is_finite() && d.first.is_finite() && d.second.is_finite(),
                "t={t}: {d:?}"
            );
        }
    }

    #[test]
    fn out_of_domain_probe_lengths_are_rejected() {
        let (pp, tree) = three_taxon();
        let (mut ws, models) = setup(&pp, &tree, 4);
        let root_branch = tree.branch_between(0, 3).unwrap();
        full_newview(&mut ws, &tree, &models, root_branch);
        build_sumtable(&ws.slices[0], &mut ws.buffers[0], models.model(0), 0, 3).unwrap();
        for bad in [-1.0, f64::NAN, f64::NEG_INFINITY] {
            let err =
                derivatives_from_sumtable(&ws.slices[0], &ws.buffers[0], models.model(0), bad)
                    .unwrap_err();
            assert!(matches!(err, OpError::InvalidBranchLength { .. }), "{bad}");
            let err = evaluate_edge(&ws.slices[0], &ws.buffers[0], models.model(0), 0, 3, bad)
                .unwrap_err();
            assert!(matches!(err, OpError::InvalidBranchLength { .. }), "{bad}");
        }
    }

    #[test]
    fn stale_sumtable_is_a_typed_error_not_ub() {
        let (pp, tree) = three_taxon();
        let (mut ws, models) = setup(&pp, &tree, 4);
        let root_branch = tree.branch_between(0, 3).unwrap();
        full_newview(&mut ws, &tree, &models, root_branch);
        // No sumtable built at all.
        let err = derivatives_from_sumtable(&ws.slices[0], &ws.buffers[0], models.model(0), 0.1)
            .unwrap_err();
        assert!(
            matches!(err, OpError::SumtableStale { got: 0, .. }),
            "{err}"
        );
        // An explicitly invalidated table behaves the same.
        build_sumtable(&ws.slices[0], &mut ws.buffers[0], models.model(0), 0, 3).unwrap();
        ws.buffers[0].invalidate_sumtable();
        let err = derivatives_from_sumtable(&ws.slices[0], &ws.buffers[0], models.model(0), 0.1)
            .unwrap_err();
        assert!(matches!(err, OpError::SumtableStale { .. }), "{err}");
    }

    #[test]
    fn gap_only_columns_have_zero_information() {
        // A pattern of all gaps has likelihood 1 (ln L = 0 contribution).
        let aln = Alignment::new(vec![
            ("t0".into(), "A-".into()),
            ("t1".into(), "A-".into()),
            ("t2".into(), "A-".into()),
        ])
        .unwrap();
        let ps = PartitionSet::unpartitioned(DataType::Dna, 2);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let tree = Tree::initial_triplet(pp.taxa.clone(), [0, 1, 2]);
        let (mut ws, models) = setup(&pp, &tree, 4);
        let root_branch = tree.branch_between(0, 3).unwrap();
        full_newview(&mut ws, &tree, &models, root_branch);

        // Evaluate only the gap pattern by zeroing the other weight.
        let mut slice = ws.slices[0].clone();
        for (i, &g) in slice.global_indices.iter().enumerate() {
            let (_, local) = pp.locate(g);
            let is_gap_pattern = pp.partitions[0]
                .pattern_states(local)
                .iter()
                .all(|&s| DataType::Dna.is_gap(s));
            if !is_gap_pattern {
                slice.weights[i] = 0.0;
            }
        }
        let lnl = evaluate_edge(
            &slice,
            &ws.buffers[0],
            models.model(0),
            0,
            3,
            tree.branch_length(root_branch),
        )
        .unwrap();
        assert!(
            lnl.abs() < 1e-9,
            "all-gap pattern must contribute ln 1 = 0, got {lnl}"
        );
    }

    #[test]
    fn scaling_keeps_likelihood_finite_on_long_branches() {
        // A deep caterpillar tree with long branches underflows the naive
        // product of per-level sums long before 64-bit floats run out of
        // exponent; the per-pattern scaling must keep the result finite and
        // must actually fire.
        let n = 260usize;
        let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let rows: Vec<(String, String)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                (
                    n.clone(),
                    if i % 2 == 0 {
                        "ACGT".to_string()
                    } else {
                        "TGCA".to_string()
                    },
                )
            })
            .collect();
        let aln = Alignment::new(rows).unwrap();
        let ps = PartitionSet::unpartitioned(DataType::Dna, 4);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let order: Vec<usize> = (0..n).collect();
        // Insert every new taxon on the most recent pendant branch: a chain of
        // depth ≈ n, the worst case for underflow.
        let mut tree = Tree::stepwise(names, &order, |b| b - 1);
        for b in tree.branches().collect::<Vec<_>>() {
            tree.set_branch_length(b, 5.0);
        }
        let (mut ws, models) = setup(&pp, &tree, 4);
        let root_branch = 0;
        full_newview(&mut ws, &tree, &models, root_branch);
        let (a, b) = tree.branch_endpoints(root_branch);
        let lnl = evaluate_edge(
            &ws.slices[0],
            &ws.buffers[0],
            models.model(0),
            a,
            b,
            tree.branch_length(root_branch),
        )
        .unwrap();
        assert!(lnl.is_finite());
        assert!(
            lnl < -100.0,
            "a 150-taxon saturated alignment must have a very poor lnL, got {lnl}"
        );
        let any_scaled = (0..tree.node_capacity()).any(|node| {
            ws.buffers[0]
                .scale(node)
                .map(|s| s.iter().any(|&x| x > 0))
                .unwrap_or(false)
        });
        assert!(
            any_scaled,
            "expected scaling events on a deep tree with long branches"
        );
    }
}
