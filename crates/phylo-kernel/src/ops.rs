//! The numerical core of the likelihood kernel.
//!
//! All functions here operate on a *slice* (one worker's patterns of one
//! partition) and are completely independent of threading: the sequential
//! executor calls them on a single slice covering everything, the threaded
//! executor calls them concurrently on disjoint slices, and the instrumented
//! executor calls them per virtual worker while recording the work.
//!
//! * [`newview_step`] — recompute the conditional likelihood vector (CLV) of
//!   one internal node from its two children (Felsenstein pruning step),
//! * [`evaluate_edge`] — per-site log likelihoods summed over the slice for a
//!   virtual root placed on a branch,
//! * [`build_sumtable`] / [`derivatives_from_sumtable`] — the RAxML
//!   `makenewz` decomposition: a branch-specific sum table that makes every
//!   Newton–Raphson iteration on that branch a cheap per-pattern loop with
//!   analytic first and second derivatives.

use phylo_data::EncodedState;
use phylo_models::PartitionModel;
use phylo_tree::{NodeId, TraversalStep};

use crate::slice::{PartitionSlice, SliceBuffers};
use crate::{LOG_SCALE_FACTOR, SCALE_FACTOR, SCALE_THRESHOLD};

/// Floor applied to per-site likelihoods before taking logarithms, so that a
/// fully impossible site (numerically zero) produces a very bad but finite
/// log likelihood instead of `-inf`.
const SITE_LIKELIHOOD_FLOOR: f64 = 1.0e-300;

/// Resolved child data used inside the inner loops.
enum ChildData<'a> {
    /// The child is a leaf; per-pattern tip states come from the slice.
    Tip(NodeId),
    /// The child is an internal node with a computed CLV and scale counters.
    Internal { clv: &'a [f64], scale: &'a [i32] },
}

fn child_data<'a>(
    slice: &PartitionSlice,
    buffers: &'a SliceBuffers,
    node: NodeId,
) -> ChildData<'a> {
    if node < slice.n_taxa {
        ChildData::Tip(node)
    } else {
        let clv = buffers
            .clv(node)
            .unwrap_or_else(|| panic!("CLV of internal node {node} has not been computed"));
        let scale = buffers
            .scale(node)
            .unwrap_or_else(|| panic!("scale counters of node {node} missing"));
        ChildData::Internal { clv, scale }
    }
}

/// Sum of transition probabilities from state `s` into the states compatible
/// with the tip bitmask: `Σ_{a ∈ mask} P[s][a]`.
#[inline]
fn tip_sum(pmat_row: &[f64], mask: EncodedState) -> f64 {
    let mut sum = 0.0;
    let mut m = mask;
    while m != 0 {
        let a = m.trailing_zeros() as usize;
        sum += pmat_row[a];
        m &= m - 1;
    }
    sum
}

/// Per-category transition matrices for one branch.
fn category_pmats(model: &PartitionModel, branch_length: f64) -> Vec<Vec<f64>> {
    let states = model.states();
    model
        .gamma_rates()
        .iter()
        .map(|&rate| {
            let mut buf = vec![0.0; states * states];
            model
                .substitution()
                .eigen()
                .transition_matrix_into(branch_length * rate, &mut buf);
            buf
        })
        .collect()
}

/// Recomputes the CLV of `step.node` for every local pattern of the slice.
///
/// `left_length` / `right_length` are the branch lengths towards the two
/// children *as seen by this partition* (per-partition branch lengths differ
/// between partitions).
pub fn newview_step(
    slice: &PartitionSlice,
    buffers: &mut SliceBuffers,
    model: &PartitionModel,
    step: &TraversalStep,
    left_length: f64,
    right_length: f64,
) {
    let states = slice.states();
    let categories = model.categories();
    let patterns = slice.pattern_count();
    debug_assert_eq!(buffers.states(), states);
    debug_assert_eq!(buffers.categories(), categories);

    let left_pmats = category_pmats(model, left_length);
    let right_pmats = category_pmats(model, right_length);

    let (mut clv, mut scale) = buffers.take_node(step.node);
    clv.resize(patterns * categories * states, 0.0);
    scale.resize(patterns, 0);

    {
        let left = child_data(slice, buffers, step.left);
        let right = child_data(slice, buffers, step.right);

        for p in 0..patterns {
            let mut max_entry = 0.0f64;
            for c in 0..categories {
                let lp = &left_pmats[c];
                let rp = &right_pmats[c];
                let base = (p * categories + c) * states;
                for s in 0..states {
                    let row = s * states;
                    let left_sum = match &left {
                        ChildData::Tip(t) => {
                            tip_sum(&lp[row..row + states], slice.tip_state(p, *t))
                        }
                        ChildData::Internal { clv: child, .. } => {
                            let cbase = (p * categories + c) * states;
                            let mut acc = 0.0;
                            for a in 0..states {
                                acc += lp[row + a] * child[cbase + a];
                            }
                            acc
                        }
                    };
                    let right_sum = match &right {
                        ChildData::Tip(t) => {
                            tip_sum(&rp[row..row + states], slice.tip_state(p, *t))
                        }
                        ChildData::Internal { clv: child, .. } => {
                            let cbase = (p * categories + c) * states;
                            let mut acc = 0.0;
                            for a in 0..states {
                                acc += rp[row + a] * child[cbase + a];
                            }
                            acc
                        }
                    };
                    let value = left_sum * right_sum;
                    clv[base + s] = value;
                    if value > max_entry {
                        max_entry = value;
                    }
                }
            }

            // Inherit scaling events from the children and rescale if the
            // pattern is about to underflow.
            let mut events = 0;
            if let ChildData::Internal { scale: s, .. } = &left {
                events += s[p];
            }
            if let ChildData::Internal { scale: s, .. } = &right {
                events += s[p];
            }
            if max_entry < SCALE_THRESHOLD && max_entry > 0.0 {
                let base = p * categories * states;
                for v in &mut clv[base..base + categories * states] {
                    *v *= SCALE_FACTOR;
                }
                events += 1;
            }
            scale[p] = events;
        }
    }

    buffers.put_back(step.node, clv, scale);
}

/// Evaluates the weighted log likelihood of the slice for a virtual root
/// placed on the branch between `left` and `right` with length
/// `branch_length`, using the partition's stationary frequencies.
///
/// Returns the sum over the local patterns of `weight × ln L(pattern)`.
pub fn evaluate_edge(
    slice: &PartitionSlice,
    buffers: &SliceBuffers,
    model: &PartitionModel,
    left: NodeId,
    right: NodeId,
    branch_length: f64,
) -> f64 {
    let states = slice.states();
    let categories = model.categories();
    let patterns = slice.pattern_count();
    let freqs = model.substitution().frequencies();
    let pmats = category_pmats(model, branch_length);
    let inv_categories = 1.0 / categories as f64;

    let left_data = child_data(slice, buffers, left);
    let right_data = child_data(slice, buffers, right);

    let mut total = 0.0;
    for p in 0..patterns {
        let mut site = 0.0;
        for (c, pm) in pmats.iter().enumerate() {
            let base = (p * categories + c) * states;
            let mut cat_sum = 0.0;
            for s in 0..states {
                let l_val = match &left_data {
                    ChildData::Tip(t) => {
                        if slice.tip_state(p, *t) & (1 << s) != 0 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    ChildData::Internal { clv, .. } => clv[base + s],
                };
                if l_val == 0.0 {
                    continue;
                }
                let row = s * states;
                let inner = match &right_data {
                    ChildData::Tip(t) => tip_sum(&pm[row..row + states], slice.tip_state(p, *t)),
                    ChildData::Internal { clv, .. } => {
                        let mut acc = 0.0;
                        for a in 0..states {
                            acc += pm[row + a] * clv[base + a];
                        }
                        acc
                    }
                };
                cat_sum += freqs[s] * l_val * inner;
            }
            site += cat_sum * inv_categories;
        }
        let mut events = 0;
        if let ChildData::Internal { scale, .. } = &left_data {
            events += scale[p];
        }
        if let ChildData::Internal { scale, .. } = &right_data {
            events += scale[p];
        }
        let ln_site = site.max(SITE_LIKELIHOOD_FLOOR).ln() - events as f64 * LOG_SCALE_FACTOR;
        total += slice.weights[p] * ln_site;
    }
    total
}

/// Builds the branch sum table for the branch between `left` and `right`.
///
/// For every local pattern `p` and rate category `c` the table stores
/// `s_k = (Wᵀ l)_k · (Wᵀ r)_k`, where `W = diag(√π)·V` comes from the model's
/// eigendecomposition. With the table in place the likelihood of the branch as
/// a function of its length `t` is `Σ_k s_k · e^{λ_k r_c t}` per category, so
/// each Newton–Raphson iteration only needs [`derivatives_from_sumtable`] and
/// never touches the CLVs again.
pub fn build_sumtable(
    slice: &PartitionSlice,
    buffers: &mut SliceBuffers,
    model: &PartitionModel,
    left: NodeId,
    right: NodeId,
) {
    let states = slice.states();
    let categories = model.categories();
    let patterns = slice.pattern_count();
    let w = &model.substitution().eigen().w;

    let (mut table, mut table_scale) = {
        let (t, s) = buffers.sumtable_mut();
        (std::mem::take(t), std::mem::take(s))
    };
    table.clear();
    table.resize(patterns * categories * states, 0.0);
    table_scale.clear();
    table_scale.resize(patterns, 0);

    {
        let left_data = child_data(slice, buffers, left);
        let right_data = child_data(slice, buffers, right);
        let mut l_vec = vec![0.0; states];
        let mut r_vec = vec![0.0; states];

        for p in 0..patterns {
            for c in 0..categories {
                let base = (p * categories + c) * states;
                for s in 0..states {
                    l_vec[s] = match &left_data {
                        ChildData::Tip(t) => {
                            if slice.tip_state(p, *t) & (1 << s) != 0 {
                                1.0
                            } else {
                                0.0
                            }
                        }
                        ChildData::Internal { clv, .. } => clv[base + s],
                    };
                    r_vec[s] = match &right_data {
                        ChildData::Tip(t) => {
                            if slice.tip_state(p, *t) & (1 << s) != 0 {
                                1.0
                            } else {
                                0.0
                            }
                        }
                        ChildData::Internal { clv, .. } => clv[base + s],
                    };
                }
                for k in 0..states {
                    let mut a = 0.0;
                    let mut b = 0.0;
                    for s in 0..states {
                        let wsk = w[(s, k)];
                        a += wsk * l_vec[s];
                        b += wsk * r_vec[s];
                    }
                    table[base + k] = a * b;
                }
            }
            let mut events = 0;
            if let ChildData::Internal { scale, .. } = &left_data {
                events += scale[p];
            }
            if let ChildData::Internal { scale, .. } = &right_data {
                events += scale[p];
            }
            table_scale[p] = events;
        }
    }

    let (t, s) = buffers.sumtable_mut();
    *t = table;
    *s = table_scale;
}

/// Result of one derivative evaluation over a slice.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EdgeDerivatives {
    /// Weighted log likelihood of the slice at the evaluated branch length.
    pub log_likelihood: f64,
    /// First derivative of the weighted log likelihood w.r.t. the branch length.
    pub first: f64,
    /// Second derivative of the weighted log likelihood w.r.t. the branch length.
    pub second: f64,
}

/// Evaluates the log likelihood and its first two derivatives with respect to
/// the branch length `t`, using the sum table previously built for this branch
/// by [`build_sumtable`].
pub fn derivatives_from_sumtable(
    slice: &PartitionSlice,
    buffers: &SliceBuffers,
    model: &PartitionModel,
    t: f64,
) -> EdgeDerivatives {
    let states = slice.states();
    let categories = model.categories();
    let patterns = slice.pattern_count();
    let table = buffers.sumtable();
    let table_scale = buffers.sumtable_scale();
    debug_assert_eq!(table.len(), patterns * categories * states);
    let eigenvalues = &model.substitution().eigen().values;
    let rates = model.gamma_rates();
    let inv_categories = 1.0 / categories as f64;

    // Pre-compute e^{λ_k r_c t}, λ_k r_c and (λ_k r_c)² for every (c, k).
    let mut exps = vec![0.0; categories * states];
    let mut lam1 = vec![0.0; categories * states];
    for c in 0..categories {
        for k in 0..states {
            let lr = eigenvalues[k] * rates[c];
            exps[c * states + k] = (lr * t).exp();
            lam1[c * states + k] = lr;
        }
    }

    assert_eq!(
        table_scale.len(),
        patterns,
        "sum table must be built (build_sumtable) before computing derivatives"
    );
    let mut out = EdgeDerivatives::default();
    for (p, &scale_events) in table_scale.iter().enumerate().take(patterns) {
        let mut f = 0.0;
        let mut f1 = 0.0;
        let mut f2 = 0.0;
        for c in 0..categories {
            let base = (p * categories + c) * states;
            let ebase = c * states;
            for k in 0..states {
                let x = table[base + k] * exps[ebase + k];
                let lr = lam1[ebase + k];
                f += x;
                f1 += lr * x;
                f2 += lr * lr * x;
            }
        }
        f *= inv_categories;
        f1 *= inv_categories;
        f2 *= inv_categories;

        let w = slice.weights[p];
        let site = f.max(SITE_LIKELIHOOD_FLOOR);
        let ratio1 = f1 / site;
        let ratio2 = f2 / site;
        out.log_likelihood += w * (site.ln() - scale_events as f64 * LOG_SCALE_FACTOR);
        out.first += w * ratio1;
        out.second += w * (ratio2 - ratio1 * ratio1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_data::{Alignment, DataType, PartitionSet, PartitionedPatterns};
    use phylo_models::{BranchLengthMode, ModelSet};
    use phylo_tree::{TraversalPlan, Tree};

    use crate::slice::WorkerSlices;

    /// Three-taxon fixture: one internal node, three branches.
    fn three_taxon() -> (PartitionedPatterns, Tree) {
        let aln = Alignment::new(vec![
            ("t0".into(), "ACGTTA".into()),
            ("t1".into(), "ACGTCA".into()),
            ("t2".into(), "ACGATA".into()),
        ])
        .unwrap();
        let ps = PartitionSet::unpartitioned(DataType::Dna, 6);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let tree = Tree::initial_triplet(pp.taxa.clone(), [0, 1, 2]);
        (pp, tree)
    }

    fn setup(pp: &PartitionedPatterns, tree: &Tree, categories: usize) -> (WorkerSlices, ModelSet) {
        let models = ModelSet::with_categories(pp, BranchLengthMode::Joint, categories);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let ws = WorkerSlices::cyclic(pp, 0, 1, tree.node_capacity(), &cats);
        (ws, models)
    }

    /// Direct (brute force) likelihood of the 3-taxon tree summing over the
    /// internal node's states, used as an independent reference.
    fn brute_force_three_taxon(pp: &PartitionedPatterns, tree: &Tree, models: &ModelSet) -> f64 {
        let part = &pp.partitions[0];
        let model = models.model(0);
        let freqs = model.substitution().frequencies();
        let states = 4usize;
        let center = 3usize;
        let mut total = 0.0;
        for p in 0..part.pattern_count() {
            let mut site = 0.0;
            for (ci, &rate) in model.gamma_rates().iter().enumerate() {
                let _ = ci;
                let mut cat = 0.0;
                // P matrices per pendant branch for this category.
                let pmats: Vec<_> = (0..3)
                    .map(|leaf| {
                        let b = tree.branch_between(center, leaf).unwrap();
                        model
                            .substitution()
                            .transition_matrix(tree.branch_length(b) * rate)
                    })
                    .collect();
                for x in 0..states {
                    let mut prod = freqs[x];
                    for (leaf, pm) in pmats.iter().enumerate() {
                        let mask = part.tip_state(p, leaf);
                        let mut s = 0.0;
                        for a in 0..states {
                            if mask & (1 << a) != 0 {
                                s += pm[(x, a)];
                            }
                        }
                        prod *= s;
                    }
                    cat += prod;
                }
                site += cat / model.categories() as f64;
            }
            total += part.weights[p] * site.ln();
        }
        total
    }

    fn full_newview(ws: &mut WorkerSlices, tree: &Tree, models: &ModelSet, root_branch: usize) {
        let plan = TraversalPlan::full(tree, root_branch);
        for step in &plan.steps {
            let slice = &ws.slices[0];
            let model = models.model(0);
            newview_step(
                slice,
                &mut ws.buffers[0],
                model,
                step,
                tree.branch_length(step.left_branch),
                tree.branch_length(step.right_branch),
            );
        }
    }

    #[test]
    fn scale_constant_is_consistent() {
        assert!((SCALE_FACTOR.ln() - LOG_SCALE_FACTOR).abs() < 1e-12);
        assert!((SCALE_THRESHOLD * SCALE_FACTOR - 1.0).abs() < 1e-12);
    }

    #[test]
    fn three_taxon_likelihood_matches_brute_force_single_category() {
        let (pp, tree) = three_taxon();
        let (mut ws, models) = setup(&pp, &tree, 1);
        // Root on the pendant branch of leaf 0.
        let root_branch = tree.branch_between(0, 3).unwrap();
        full_newview(&mut ws, &tree, &models, root_branch);
        let lnl = evaluate_edge(
            &ws.slices[0],
            &ws.buffers[0],
            models.model(0),
            0,
            3,
            tree.branch_length(root_branch),
        );
        let reference = brute_force_three_taxon(&pp, &tree, &models);
        assert!(
            (lnl - reference).abs() < 1e-9,
            "kernel {lnl} vs brute force {reference}"
        );
        assert!(lnl < 0.0, "log likelihood must be negative");
    }

    #[test]
    fn three_taxon_likelihood_matches_brute_force_gamma() {
        let (pp, tree) = three_taxon();
        let (mut ws, models) = setup(&pp, &tree, 4);
        let root_branch = tree.branch_between(1, 3).unwrap();
        full_newview(&mut ws, &tree, &models, root_branch);
        let lnl = evaluate_edge(
            &ws.slices[0],
            &ws.buffers[0],
            models.model(0),
            1,
            3,
            tree.branch_length(root_branch),
        );
        let reference = brute_force_three_taxon(&pp, &tree, &models);
        assert!(
            (lnl - reference).abs() < 1e-9,
            "kernel {lnl} vs reference {reference}"
        );
    }

    #[test]
    fn likelihood_is_invariant_to_root_placement() {
        let (pp, tree) = three_taxon();
        let (mut ws, models) = setup(&pp, &tree, 4);
        let mut values = Vec::new();
        for root_branch in tree.branches() {
            full_newview(&mut ws, &tree, &models, root_branch);
            let (a, b) = tree.branch_endpoints(root_branch);
            let lnl = evaluate_edge(
                &ws.slices[0],
                &ws.buffers[0],
                models.model(0),
                a,
                b,
                tree.branch_length(root_branch),
            );
            values.push(lnl);
        }
        for v in &values[1..] {
            assert!(
                (v - values[0]).abs() < 1e-9,
                "root invariance violated: {values:?}"
            );
        }
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let (pp, tree) = three_taxon();
        let (mut ws, models) = setup(&pp, &tree, 4);
        let root_branch = tree.branch_between(2, 3).unwrap();
        full_newview(&mut ws, &tree, &models, root_branch);
        build_sumtable(&ws.slices[0], &mut ws.buffers[0], models.model(0), 2, 3);

        let f = |t: f64| evaluate_edge(&ws.slices[0], &ws.buffers[0], models.model(0), 2, 3, t);
        for &t in &[0.02, 0.1, 0.3, 0.8] {
            let d = derivatives_from_sumtable(&ws.slices[0], &ws.buffers[0], models.model(0), t);
            // The sum-table log likelihood must agree with evaluate_edge.
            assert!(
                (d.log_likelihood - f(t)).abs() < 1e-8,
                "lnL mismatch at t={t}"
            );
            let h = 1e-6;
            let fd1 = (f(t + h) - f(t - h)) / (2.0 * h);
            let fd2 = (f(t + h) - 2.0 * f(t) + f(t - h)) / (h * h);
            assert!(
                (d.first - fd1).abs() < 1e-4 * (1.0 + fd1.abs()),
                "first derivative at t={t}: analytic {} vs fd {fd1}",
                d.first
            );
            assert!(
                (d.second - fd2).abs() < 1e-2 * (1.0 + fd2.abs()),
                "second derivative at t={t}: analytic {} vs fd {fd2}",
                d.second
            );
        }
    }

    #[test]
    fn gap_only_columns_have_zero_information() {
        // A pattern of all gaps has likelihood 1 (ln L = 0 contribution).
        let aln = Alignment::new(vec![
            ("t0".into(), "A-".into()),
            ("t1".into(), "A-".into()),
            ("t2".into(), "A-".into()),
        ])
        .unwrap();
        let ps = PartitionSet::unpartitioned(DataType::Dna, 2);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let tree = Tree::initial_triplet(pp.taxa.clone(), [0, 1, 2]);
        let (mut ws, models) = setup(&pp, &tree, 4);
        let root_branch = tree.branch_between(0, 3).unwrap();
        full_newview(&mut ws, &tree, &models, root_branch);

        // Evaluate only the gap pattern by zeroing the other weight.
        let mut slice = ws.slices[0].clone();
        for (i, &g) in slice.global_indices.iter().enumerate() {
            let (_, local) = pp.locate(g);
            let is_gap_pattern = pp.partitions[0]
                .pattern_states(local)
                .iter()
                .all(|&s| DataType::Dna.is_gap(s));
            if !is_gap_pattern {
                slice.weights[i] = 0.0;
            }
        }
        let lnl = evaluate_edge(
            &slice,
            &ws.buffers[0],
            models.model(0),
            0,
            3,
            tree.branch_length(root_branch),
        );
        assert!(
            lnl.abs() < 1e-9,
            "all-gap pattern must contribute ln 1 = 0, got {lnl}"
        );
    }

    #[test]
    fn scaling_keeps_likelihood_finite_on_long_branches() {
        // A deep caterpillar tree with long branches underflows the naive
        // product of per-level sums long before 64-bit floats run out of
        // exponent; the per-pattern scaling must keep the result finite and
        // must actually fire.
        let n = 260usize;
        let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let rows: Vec<(String, String)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                (
                    n.clone(),
                    if i % 2 == 0 {
                        "ACGT".to_string()
                    } else {
                        "TGCA".to_string()
                    },
                )
            })
            .collect();
        let aln = Alignment::new(rows).unwrap();
        let ps = PartitionSet::unpartitioned(DataType::Dna, 4);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let order: Vec<usize> = (0..n).collect();
        // Insert every new taxon on the most recent pendant branch: a chain of
        // depth ≈ n, the worst case for underflow.
        let mut tree = Tree::stepwise(names, &order, |b| b - 1);
        for b in tree.branches().collect::<Vec<_>>() {
            tree.set_branch_length(b, 5.0);
        }
        let (mut ws, models) = setup(&pp, &tree, 4);
        let root_branch = 0;
        full_newview(&mut ws, &tree, &models, root_branch);
        let (a, b) = tree.branch_endpoints(root_branch);
        let lnl = evaluate_edge(
            &ws.slices[0],
            &ws.buffers[0],
            models.model(0),
            a,
            b,
            tree.branch_length(root_branch),
        );
        assert!(lnl.is_finite());
        assert!(
            lnl < -100.0,
            "a 150-taxon saturated alignment must have a very poor lnL, got {lnl}"
        );
        let any_scaled = (0..tree.node_capacity()).any(|node| {
            ws.buffers[0]
                .scale(node)
                .map(|s| s.iter().any(|&x| x > 0))
                .unwrap_or(false)
        });
        assert!(
            any_scaled,
            "expected scaling events on a deep tree with long branches"
        );
    }
}
