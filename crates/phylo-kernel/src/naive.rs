//! A deliberately simple reference implementation of the likelihood.
//!
//! This module exists only to cross-validate the optimized kernel: it
//! recomputes every conditional likelihood vector from scratch with fresh
//! allocations, no pattern slicing, no scaling tricks (it works in log space
//! per pattern only at the very end) and no caching. It is orders of magnitude
//! slower but easy to audit, which is exactly what a reference should be.

use phylo_data::PartitionedPatterns;
use phylo_models::ModelSet;
use phylo_tree::{NodeId, Tree};

use crate::branch_lengths::BranchLengths;

/// Computes the per-partition log likelihoods of the dataset on `tree` with a
/// full recursive post-order traversal per partition.
///
/// `branch_lengths` supplies per-partition branch lengths; the virtual root is
/// placed on the pendant branch of leaf 0 (the choice does not matter for
/// time-reversible models).
pub fn naive_log_likelihoods(
    patterns: &PartitionedPatterns,
    tree: &Tree,
    models: &ModelSet,
    branch_lengths: &BranchLengths,
) -> Vec<f64> {
    (0..patterns.partition_count())
        .map(|pi| naive_partition(patterns, tree, models, branch_lengths, pi))
        .collect()
}

/// Total log likelihood (sum over partitions).
pub fn naive_log_likelihood(
    patterns: &PartitionedPatterns,
    tree: &Tree,
    models: &ModelSet,
    branch_lengths: &BranchLengths,
) -> f64 {
    naive_log_likelihoods(patterns, tree, models, branch_lengths)
        .iter()
        .sum()
}

fn naive_partition(
    patterns: &PartitionedPatterns,
    tree: &Tree,
    models: &ModelSet,
    branch_lengths: &BranchLengths,
    partition: usize,
) -> f64 {
    let part = &patterns.partitions[partition];
    let model = models.model(partition);
    let states = part.states();
    let categories = model.categories();
    let freqs = model.substitution().frequencies();

    // Root on the pendant branch of leaf 0.
    let root_leaf: NodeId = 0;
    let (anchor, root_branch) = tree.neighbors(root_leaf)[0];
    let root_length = branch_lengths.get(partition, root_branch);

    let mut total = 0.0;
    for p in 0..part.pattern_count() {
        let mut site = 0.0;
        for (c, &rate) in model.gamma_rates().iter().enumerate() {
            let _ = c;
            // Conditional likelihood of the anchor subtree (everything except
            // the root leaf), oriented towards the root leaf.
            let anchor_clv = conditional(
                tree,
                part,
                model,
                branch_lengths,
                partition,
                rate,
                p,
                anchor,
                root_leaf,
            );
            // Combine across the root branch.
            let pmat = model.substitution().transition_matrix(root_length * rate);
            let mask = part.tip_state(p, root_leaf);
            let mut cat = 0.0;
            for s in 0..states {
                if mask & (1 << s) == 0 {
                    continue;
                }
                let mut inner = 0.0;
                for a in 0..states {
                    inner += pmat[(s, a)] * anchor_clv[a];
                }
                cat += freqs[s] * inner;
            }
            site += cat / categories as f64;
        }
        total += part.weights[p] * site.ln();
    }
    total
}

/// Conditional likelihood vector of `node` (oriented away from `parent`) for
/// one pattern and one rate category, computed recursively.
#[allow(clippy::too_many_arguments)]
fn conditional(
    tree: &Tree,
    part: &phylo_data::CompressedPartition,
    model: &phylo_models::PartitionModel,
    branch_lengths: &BranchLengths,
    partition: usize,
    rate: f64,
    pattern: usize,
    node: NodeId,
    parent: NodeId,
) -> Vec<f64> {
    let states = part.states();
    if tree.is_leaf(node) {
        let mask = part.tip_state(pattern, node);
        return (0..states)
            .map(|s| if mask & (1 << s) != 0 { 1.0 } else { 0.0 })
            .collect();
    }
    let mut result = vec![1.0; states];
    for &(child, branch) in tree.neighbors(node) {
        if child == parent {
            continue;
        }
        let child_clv = conditional(
            tree,
            part,
            model,
            branch_lengths,
            partition,
            rate,
            pattern,
            child,
            node,
        );
        let t = branch_lengths.get(partition, branch) * rate;
        let pmat = model.substitution().transition_matrix(t);
        for s in 0..states {
            let mut sum = 0.0;
            for a in 0..states {
                sum += pmat[(s, a)] * child_clv[a];
            }
            result[s] *= sum;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SequentialKernel;
    use phylo_data::{Alignment, DataType, PartitionSet};
    use phylo_models::BranchLengthMode;
    use phylo_tree::random::random_tree;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    fn random_dataset(
        taxa: usize,
        columns: usize,
        partition_len: usize,
        data_type: DataType,
        seed: u64,
    ) -> (Arc<PartitionedPatterns>, Tree) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let names: Vec<String> = (0..taxa).map(|i| format!("t{i}")).collect();
        let chars: Vec<char> = match data_type {
            DataType::Dna => "ACGT-".chars().collect(),
            DataType::Protein => "ARNDCQEGHILKMFPSTWYV-".chars().collect(),
        };
        let rows: Vec<(String, String)> = names
            .iter()
            .map(|n| {
                let seq: String = (0..columns)
                    .map(|_| chars[rng.gen_range(0..chars.len())])
                    .collect();
                (n.clone(), seq)
            })
            .collect();
        let aln = Alignment::new(rows).unwrap();
        let ps = PartitionSet::equal_length(data_type, columns, partition_len);
        let pp = Arc::new(PartitionedPatterns::compile(&aln, &ps).unwrap());
        let tree = random_tree(&names, &mut rng);
        (pp, tree)
    }

    #[test]
    fn kernel_matches_naive_reference_dna() {
        for seed in 0..3u64 {
            let (pp, tree) = random_dataset(7, 36, 12, DataType::Dna, seed);
            let models = ModelSet::default_for(&pp, BranchLengthMode::PerPartition);
            let mut kernel =
                SequentialKernel::build(pp.clone(), tree.clone(), models.clone()).unwrap();
            let kernel_lnls = {
                let mask = kernel.full_mask();
                let root = kernel.default_root_branch();
                kernel.try_log_likelihood_partitions(root, &mask).unwrap()
            };
            let bl = BranchLengths::from_tree(
                &tree,
                pp.partition_count(),
                BranchLengthMode::PerPartition,
            );
            let naive_lnls = naive_log_likelihoods(&pp, &tree, &models, &bl);
            for (a, b) in kernel_lnls.iter().zip(naive_lnls.iter()) {
                assert!((a - b).abs() < 1e-8, "seed {seed}: kernel {a} vs naive {b}");
            }
        }
    }

    #[test]
    fn kernel_matches_naive_reference_protein() {
        let (pp, tree) = random_dataset(5, 12, 6, DataType::Protein, 7);
        let models = ModelSet::default_for(&pp, BranchLengthMode::Joint);
        let mut kernel = SequentialKernel::build(pp.clone(), tree.clone(), models.clone()).unwrap();
        let kernel_total = kernel.try_log_likelihood().unwrap();
        let bl = BranchLengths::from_tree(&tree, pp.partition_count(), BranchLengthMode::Joint);
        let naive_total = naive_log_likelihood(&pp, &tree, &models, &bl);
        assert!(
            (kernel_total - naive_total).abs() < 1e-8,
            "kernel {kernel_total} vs naive {naive_total}"
        );
    }

    #[test]
    fn kernel_matches_naive_after_branch_change() {
        let (pp, tree) = random_dataset(6, 24, 8, DataType::Dna, 11);
        let models = ModelSet::default_for(&pp, BranchLengthMode::PerPartition);
        let mut kernel = SequentialKernel::build(pp.clone(), tree.clone(), models.clone()).unwrap();
        let _ = kernel.try_log_likelihood().unwrap();
        let victim = kernel.tree().internal_branches()[0];
        kernel.set_branch_length(crate::engine::BranchScope::Partition(1), victim, 0.73);
        let kernel_total = kernel.try_log_likelihood().unwrap();

        let mut bl =
            BranchLengths::from_tree(&tree, pp.partition_count(), BranchLengthMode::PerPartition);
        bl.set(1, victim, 0.73);
        let naive_total = naive_log_likelihood(&pp, &tree, &models, &bl);
        assert!(
            (kernel_total - naive_total).abs() < 1e-8,
            "kernel {kernel_total} vs naive {naive_total}"
        );
    }
}
