//! Master-side tracking of which conditional likelihood vectors are valid.
//!
//! Every internal node stores (per partition, per worker — but the validity is
//! identical across workers, so it is tracked once by the master) one CLV,
//! oriented towards one of its three neighbors. A CLV can be reused by a
//! partial traversal only if it is oriented the right way *and* nothing in the
//! subtree it summarizes has changed since it was computed. This cache is what
//! turns the paper's "3–4 inner likelihood vectors on average" during the tree
//! search phase into reality instead of full traversals.

use phylo_tree::{orientation_toward_branch, BranchId, NodeId, Tree};

/// Validity and orientation of the stored CLVs, per partition and node.
#[derive(Debug, Clone, PartialEq)]
pub struct ClvValidity {
    /// `stored[partition][node]` is `Some(towards)` if the node's CLV is valid
    /// and oriented towards neighbor `towards`, `None` otherwise.
    stored: Vec<Vec<Option<NodeId>>>,
}

impl ClvValidity {
    /// Creates an all-invalid cache for `partitions` partitions on a tree with
    /// `node_capacity` node slots.
    pub fn new(partitions: usize, node_capacity: usize) -> Self {
        Self {
            stored: vec![vec![None; node_capacity]; partitions],
        }
    }

    /// Number of partitions tracked.
    pub fn partitions(&self) -> usize {
        self.stored.len()
    }

    /// Is the CLV of `node` in `partition` valid and oriented towards
    /// `towards`?
    pub fn is_valid(&self, partition: usize, node: NodeId, towards: NodeId) -> bool {
        self.stored[partition][node] == Some(towards)
    }

    /// Records that the CLV of `node` in `partition` is now valid and oriented
    /// towards `towards`.
    pub fn mark_valid(&mut self, partition: usize, node: NodeId, towards: NodeId) {
        self.stored[partition][node] = Some(towards);
    }

    /// Invalidates every CLV of one partition (used after its Q matrix or α
    /// changes: every likelihood entry of that partition is stale).
    pub fn invalidate_partition(&mut self, partition: usize) {
        for slot in &mut self.stored[partition] {
            *slot = None;
        }
    }

    /// Invalidates every CLV of every partition.
    pub fn invalidate_all(&mut self) {
        for part in &mut self.stored {
            for slot in part {
                *slot = None;
            }
        }
    }

    /// Invalidates the CLVs of specific nodes in one partition.
    pub fn invalidate_nodes(&mut self, partition: usize, nodes: &[NodeId]) {
        for &n in nodes {
            self.stored[partition][n] = None;
        }
    }

    /// After the length of `branch` changed for `partition`: a stored CLV
    /// remains valid only if it is oriented *towards* that branch (then the
    /// subtree it summarizes does not contain the branch).
    pub fn branch_length_changed(&mut self, tree: &Tree, partition: usize, branch: BranchId) {
        let toward = orientation_toward_branch(tree, branch);
        for node in 0..self.stored[partition].len() {
            if let Some(stored_towards) = self.stored[partition][node] {
                if toward.get(node).copied().flatten() != Some(stored_towards) {
                    self.stored[partition][node] = None;
                }
            }
        }
    }

    /// After a topology change (SPR): only CLVs that are off the affected path
    /// *and* oriented towards the evaluation root branch are provably still
    /// valid; everything else is dropped. This is applied to every partition
    /// because the topology is shared.
    pub fn topology_changed(&mut self, tree: &Tree, affected: &[NodeId], root_branch: BranchId) {
        let toward = orientation_toward_branch(tree, root_branch);
        for part in &mut self.stored {
            for (node, slot) in part.iter_mut().enumerate() {
                let keep = match *slot {
                    Some(stored_towards) => {
                        !affected.contains(&node)
                            && toward.get(node).copied().flatten() == Some(stored_towards)
                    }
                    None => false,
                };
                if !keep {
                    *slot = None;
                }
            }
        }
    }

    /// Number of currently valid CLVs in one partition (diagnostics).
    pub fn valid_count(&self, partition: usize) -> usize {
        self.stored[partition]
            .iter()
            .filter(|s| s.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_tree::random::random_tree;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tree() -> Tree {
        let names: Vec<String> = (0..8).map(|i| format!("t{i}")).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        random_tree(&names, &mut rng)
    }

    #[test]
    fn starts_all_invalid() {
        let t = tree();
        let v = ClvValidity::new(3, t.node_capacity());
        assert_eq!(v.partitions(), 3);
        for p in 0..3 {
            assert_eq!(v.valid_count(p), 0);
        }
    }

    #[test]
    fn mark_and_check() {
        let t = tree();
        let mut v = ClvValidity::new(1, t.node_capacity());
        let node = t.internal_nodes().next().unwrap();
        let towards = t.neighbors(node)[0].0;
        v.mark_valid(0, node, towards);
        assert!(v.is_valid(0, node, towards));
        assert!(!v.is_valid(0, node, t.neighbors(node)[1].0));
        assert_eq!(v.valid_count(0), 1);
    }

    #[test]
    fn invalidate_partition_is_per_partition() {
        let t = tree();
        let mut v = ClvValidity::new(2, t.node_capacity());
        let node = t.internal_nodes().next().unwrap();
        let towards = t.neighbors(node)[0].0;
        v.mark_valid(0, node, towards);
        v.mark_valid(1, node, towards);
        v.invalidate_partition(0);
        assert!(!v.is_valid(0, node, towards));
        assert!(v.is_valid(1, node, towards));
    }

    #[test]
    fn branch_length_change_keeps_only_clvs_pointing_at_the_branch() {
        let t = tree();
        let mut v = ClvValidity::new(1, t.node_capacity());
        let branch = t.internal_branches()[0];
        let toward = orientation_toward_branch(&t, branch);
        // Mark every internal node valid towards the branch, plus one node
        // deliberately oriented the wrong way.
        for node in t.internal_nodes() {
            v.mark_valid(0, node, toward[node].unwrap());
        }
        let victim = t
            .internal_nodes()
            .find(|&n| t.neighbors(n).iter().any(|&(nb, _)| Some(nb) != toward[n]))
            .unwrap();
        let wrong = t
            .neighbors(victim)
            .iter()
            .find(|&&(nb, _)| Some(nb) != toward[victim])
            .unwrap()
            .0;
        v.mark_valid(0, victim, wrong);

        v.branch_length_changed(&t, 0, branch);
        for node in t.internal_nodes() {
            if node == victim {
                assert!(!v.is_valid(0, node, wrong));
            } else {
                assert!(v.is_valid(0, node, toward[node].unwrap()));
            }
        }
    }

    #[test]
    fn topology_change_drops_affected_and_misoriented() {
        let t = tree();
        let mut v = ClvValidity::new(2, t.node_capacity());
        let root_branch = 0;
        let toward = orientation_toward_branch(&t, root_branch);
        for node in t.internal_nodes() {
            v.mark_valid(0, node, toward[node].unwrap());
            v.mark_valid(1, node, toward[node].unwrap());
        }
        let affected: Vec<NodeId> = t.internal_nodes().take(2).collect();
        v.topology_changed(&t, &affected, root_branch);
        for &n in &affected {
            assert!(!v.is_valid(0, n, toward[n].unwrap()));
            assert!(!v.is_valid(1, n, toward[n].unwrap()));
        }
        let unaffected = t.internal_nodes().find(|n| !affected.contains(n)).unwrap();
        assert!(v.is_valid(0, unaffected, toward[unaffected].unwrap()));
    }
}
