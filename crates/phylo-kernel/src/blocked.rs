//! Cache-blocked, width-specialized tabled kernels — the
//! [`KernelDispatch::Blocked`] inner loops.
//!
//! The scalar tabled kernels in [`crate::ops`] run one generic loop for every
//! alphabet: per (pattern, category, state) they re-match the child kind and
//! accumulate the matrix–vector product one term at a time through a single
//! running sum, with a bounds check on every CLV access. That shape is the
//! bit-for-bit reference — and it leaves most of the machine idle. This
//! module rewrites the two hot primitives per state width:
//!
//! * **4-wide DNA** ([`newview_step_blocked`] / [`evaluate_edge_blocked`]
//!   with `states == 4`): the per-child contribution vector is produced by a
//!   **fully unrolled 4×4 matrix–vector product** over a fixed-size
//!   16-element matrix slice. The unrolled form performs *exactly* the same
//!   additions in *exactly* the same `a`-ascending order as the scalar
//!   kernel, so the DNA path agrees with the scalar dispatch **bit for
//!   bit** (asserted by `tests/kernel_differential.rs`).
//! * **20-wide protein** (`states == 20`): patterns are processed in
//!   **L1-sized tiles** ([`PROTEIN_TILE`] patterns): child kinds are resolved
//!   once per tile, then the category loop runs *outside* the tile's pattern
//!   loop so one pair of 20×20 transition matrices (3.2 KiB each) stays hot
//!   while the tile streams through it. Each 20×20 matrix–vector product is
//!   a **column-broadcast GEMV over the transposed matrix mirror**
//!   ([`BranchTables::pmat_t`]): broadcast one child entry `x[a]`, then
//!   fused-multiply-add a contiguous matrix column into 20 independent
//!   accumulators (five 4-wide SIMD lanes) — 100 packed FMAs and **zero
//!   horizontal reductions** per product, ten independent chains when both
//!   children are internal and the two products run fused. Every output
//!   state still sums its terms in the scalar kernel's `a`-ascending order;
//!   only the FMA contraction deviates, so the protein path agrees with the
//!   scalar dispatch to a documented tolerance (≤1e-12 in lnL) instead of
//!   bit for bit; tip-row and mask fallback paths perform identical
//!   arithmetic and remain exact.
//!
//! Any other state width falls back to the scalar tabled kernels, so the
//! blocked dispatch is total over all inputs. Scaling semantics (threshold,
//! factor, per-pattern event inheritance) are byte-identical to the scalar
//! path: the set of values compared against [`SCALE_THRESHOLD`] is the same,
//! and `max` is order-independent over that set.
//!
//! The reference path is kept honest by never being touched here: the scalar
//! kernels in [`crate::ops`] are the property-tested ground truth, and the
//! differential harness drives both dispatches over random datasets, extreme
//! branch lengths, ambiguity masks and scaling-threshold crossings.
//!
//! [`KernelDispatch::Blocked`]: crate::tables::KernelDispatch::Blocked

use phylo_models::PartitionModel;
use phylo_tree::{NodeId, TraversalStep};
use std::sync::Arc;

use crate::error::OpError;
use crate::ops::{
    self, check_buffer_dims, check_slice_shape, check_table_dims, child_data, tip_sum, CatChild,
    ChildData, ResolvedChild, SITE_LIKELIHOOD_FLOOR,
};
use crate::slice::{PartitionSlice, SliceBuffers, TIP_INDEX_NONE};
use crate::tables::{BranchTables, StepTables};
use crate::{LOG_SCALE_FACTOR, SCALE_FACTOR, SCALE_THRESHOLD};

/// Pattern-tile width of the 20-state kernels. One tile touches, per
/// category: two 20×20 transition matrices (2 × 3.2 KiB), the tile's child
/// and target CLV rows (≤ 3 × 32 × 160 B = 15 KiB) and the tip-lookup rows —
/// comfortably inside a 32 KiB L1d while large enough to amortize the
/// per-tile child resolution.
pub const PROTEIN_TILE: usize = 32;

/// State width handled by the fully unrolled 4-state kernels.
pub const BLOCKED_DNA_STATES: usize = 4;

/// State width handled by the tiled 20-state kernels. [`BranchTables`]
/// builds the column-major transition-matrix mirror only for this width.
pub const BLOCKED_PROTEIN_STATES: usize = 20;

/// Resolves one tip child of `pattern`: cached dictionary index if the
/// per-slice tip-index cache covers this dictionary, raw mask fallback
/// otherwise. Mirrors the scalar kernels' hoisted per-pattern resolution.
#[inline]
fn resolve_tip<'a>(
    slice: &PartitionSlice,
    tip_idx: &[u32],
    pattern: usize,
    taxon: usize,
    cached: bool,
    tables: &'a BranchTables,
) -> ResolvedChild<'a> {
    let mask = slice.tip_state(pattern, taxon);
    let index = if cached {
        let mi = tip_idx[pattern * slice.n_taxa + taxon];
        (mi != TIP_INDEX_NONE).then_some(mi as usize)
    } else {
        tables.dict().index_of(mask)
    };
    match index {
        Some(mi) => ResolvedChild::Indexed(mi),
        None => ResolvedChild::Mask(mask),
    }
}

/// The per-(pattern, category) contribution vector of one child for the
/// 4-state alphabet: tip-lookup row copy, mask fallback, or the fully
/// unrolled 4×4 matrix–vector product against the child CLV.
///
/// The unrolled product performs the same multiply–adds in the same
/// `a`-ascending order as the scalar kernel's inner loop, so every result is
/// bit-identical to the scalar dispatch.
#[inline(always)]
fn vec4(cat: &CatChild<'_>, pmat: &[f64], base: usize) -> [f64; 4] {
    match cat {
        CatChild::Row(row) => [row[0], row[1], row[2], row[3]],
        CatChild::Mask(mask) => [
            tip_sum(&pmat[0..4], *mask),
            tip_sum(&pmat[4..8], *mask),
            tip_sum(&pmat[8..12], *mask),
            tip_sum(&pmat[12..16], *mask),
        ],
        CatChild::Clv(child) => {
            let x = &child[base..base + 4];
            let m = &pmat[..16];
            let mut out = [0.0f64; 4];
            let mut acc = 0.0;
            acc += m[0] * x[0];
            acc += m[1] * x[1];
            acc += m[2] * x[2];
            acc += m[3] * x[3];
            out[0] = acc;
            let mut acc = 0.0;
            acc += m[4] * x[0];
            acc += m[5] * x[1];
            acc += m[6] * x[2];
            acc += m[7] * x[3];
            out[1] = acc;
            let mut acc = 0.0;
            acc += m[8] * x[0];
            acc += m[9] * x[1];
            acc += m[10] * x[2];
            acc += m[11] * x[3];
            out[2] = acc;
            let mut acc = 0.0;
            acc += m[12] * x[0];
            acc += m[13] * x[1];
            acc += m[14] * x[2];
            acc += m[15] * x[3];
            out[3] = acc;
            out
        }
    }
}

/// 20×20 column-broadcast matrix–vector product: `out[s] = Σ_a P[s][a]·x[a]`
/// over the **column-major** matrix mirror ([`BranchTables::pmat_t`]).
///
/// Each column iteration broadcasts one `x[a]` and fused-multiply-adds a
/// contiguous matrix column into 20 independent accumulators (five 4-wide
/// SIMD lanes) — no horizontal reductions anywhere, and each output state
/// sums its terms in the same `a`-ascending order as the scalar kernel. The
/// only deviation from the scalar dispatch is the FMA skipping the
/// intermediate rounding of `mul` + `add`, which the documented protein
/// tolerance covers.
#[inline(always)]
fn matvec20_t(pmat_t: &[f64], x: &[f64]) -> [f64; 20] {
    let mut out = [0.0f64; 20];
    for (xa, col) in x.iter().zip(pmat_t.chunks_exact(20)) {
        for (o, m) in out.iter_mut().zip(col) {
            *o = m.mul_add(*xa, *o);
        }
    }
    out
}

/// The per-(pattern, category) contribution vector of one child for the
/// 20-state alphabet: tip-lookup row copy, mask fallback, or the 20×20
/// matrix–vector product — column-broadcast over the transposed matrix when
/// the tables carry one ([`matvec20_t`]), otherwise a row-major form in 4
/// independent fused-multiply-add lanes (which re-associates the inner sum;
/// both deviations are covered by the documented protein tolerance).
#[inline(always)]
fn vec20(cat: &CatChild<'_>, pmat: &[f64], pmat_t: Option<&[f64]>, base: usize) -> [f64; 20] {
    let mut out = [0.0f64; 20];
    match cat {
        CatChild::Row(row) => out.copy_from_slice(&row[..20]),
        CatChild::Mask(mask) => {
            for (row, o) in pmat.chunks_exact(20).zip(out.iter_mut()) {
                *o = tip_sum(row, *mask);
            }
        }
        CatChild::Clv(child) => {
            let x = &child[base..base + 20];
            if let Some(t) = pmat_t {
                out = matvec20_t(t, x);
            } else {
                for (row, o) in pmat.chunks_exact(20).zip(out.iter_mut()) {
                    let mut a0 = 0.0f64;
                    let mut a1 = 0.0f64;
                    let mut a2 = 0.0f64;
                    let mut a3 = 0.0f64;
                    for (rc, xc) in row.chunks_exact(4).zip(x.chunks_exact(4)) {
                        a0 = rc[0].mul_add(xc[0], a0);
                        a1 = rc[1].mul_add(xc[1], a1);
                        a2 = rc[2].mul_add(xc[2], a2);
                        a3 = rc[3].mul_add(xc[3], a3);
                    }
                    *o = (a0 + a1) + (a2 + a3);
                }
            }
        }
    }
    out
}

/// Fused per-(pattern, category) update of one 20-state CLV block: both
/// children's contributions in a single pass over the output states, written
/// directly into `out`, returning the running maximum for the scaling check.
///
/// When both children are internal CLVs and the tables carry transposed
/// matrices, the two column-broadcast products run interleaved: each column
/// iteration issues fused-multiply-adds into **ten independent 4-wide
/// accumulator lanes** (five per child). A single column walk is
/// latency-bound on its five accumulator chains; interleaving both children
/// doubles the in-flight chains and turns the loop throughput-bound. Mixed
/// tip/CLV pairs fall back to the per-child vectors (the tip side is a
/// table-row copy).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn fused20(
    lcat: &CatChild<'_>,
    rcat: &CatChild<'_>,
    lp: &[f64],
    rp: &[f64],
    lpt: Option<&[f64]>,
    rpt: Option<&[f64]>,
    base: usize,
    out: &mut [f64],
    mut max_entry: f64,
) -> f64 {
    if let (CatChild::Clv(lchild), CatChild::Clv(rchild), Some(lt), Some(rt)) =
        (lcat, rcat, lpt, rpt)
    {
        let xl = &lchild[base..base + 20];
        let xr = &rchild[base..base + 20];
        let mut l = [0.0f64; 20];
        let mut r = [0.0f64; 20];
        for ((xla, lcol), (xra, rcol)) in xl
            .iter()
            .zip(lt.chunks_exact(20))
            .zip(xr.iter().zip(rt.chunks_exact(20)))
        {
            for (o, m) in l.iter_mut().zip(lcol) {
                *o = m.mul_add(*xla, *o);
            }
            for (o, m) in r.iter_mut().zip(rcol) {
                *o = m.mul_add(*xra, *o);
            }
        }
        for ((o, &lv), &rv) in out.iter_mut().zip(l.iter()).zip(r.iter()) {
            let value = lv * rv;
            *o = value;
            max_entry = max_entry.max(value);
        }
    } else {
        let l = vec20(lcat, lp, lpt, base);
        let r = vec20(rcat, rp, rpt, base);
        for ((o, &lv), &rv) in out.iter_mut().zip(l.iter()).zip(r.iter()) {
            let value = lv * rv;
            *o = value;
            max_entry = max_entry.max(value);
        }
    }
    max_entry
}

/// The blocked counterpart of [`ops::newview_step_tabled`]: recomputes the
/// CLV of `step.node` with the width-specialized inner loops (4-wide DNA
/// fully unrolled, 20-wide protein tiled + 4-lane). State widths other than
/// 4 and 20 fall back to the scalar tabled kernel.
///
/// DNA results are bit-identical to the scalar dispatch; protein results
/// agree within the documented tolerance (the 4 lanes re-associate the inner
/// products). Scaling events and their inheritance are identical under both
/// dispatches.
///
/// # Errors
///
/// Exactly the scalar kernel's contract: [`OpError::SliceShape`] /
/// [`OpError::TableDims`] / [`OpError::BufferDims`] for mismatched shapes,
/// [`OpError::ClvMissing`] / [`OpError::ScaleMissing`] for absent children.
pub fn newview_step_blocked(
    slice: &PartitionSlice,
    buffers: &mut SliceBuffers,
    step: &TraversalStep,
    tables: &StepTables,
) -> Result<(), OpError> {
    let states = slice.states();
    if states != 4 && states != 20 {
        return ops::newview_step_tabled(slice, buffers, step, tables);
    }
    let left_tables = &*tables.left;
    let right_tables = &*tables.right;
    let patterns = slice.pattern_count();
    check_slice_shape(slice, buffers)?;
    check_table_dims(slice, buffers, left_tables)?;
    check_table_dims(slice, buffers, right_tables)?;
    let categories = left_tables.categories();
    check_buffer_dims(slice, buffers, states, categories)?;

    // Same per-slice tip-index cache warm-up as the scalar kernel (the cache
    // is keyed on the dictionary's Arc identity and shared between the
    // dispatches).
    let left_is_tip = step.left < slice.n_taxa;
    let right_is_tip = step.right < slice.n_taxa;
    let right_cached = Arc::ptr_eq(left_tables.dict_arc(), right_tables.dict_arc());
    if left_is_tip || (right_is_tip && right_cached) {
        buffers.tip_indices(slice, left_tables.dict_arc());
    }

    child_data(slice, buffers, step.left)?;
    child_data(slice, buffers, step.right)?;

    let (mut clv, mut scale) = buffers.take_node(step.node);
    clv.resize(patterns * categories * states, 0.0);
    scale.resize(patterns, 0);

    {
        let tip_idx = buffers.cached_tip_indices();
        let left = child_data(slice, buffers, step.left)?;
        let right = child_data(slice, buffers, step.right)?;
        let resolve = |p: usize| {
            let left_res = match &left {
                ChildData::Tip(t) => resolve_tip(slice, tip_idx, p, *t, true, left_tables),
                ChildData::Internal { clv: child, .. } => ResolvedChild::Clv(child),
            };
            let right_res = match &right {
                ChildData::Tip(t) => resolve_tip(slice, tip_idx, p, *t, right_cached, right_tables),
                ChildData::Internal { clv: child, .. } => ResolvedChild::Clv(child),
            };
            (left_res, right_res)
        };

        if states == 4 {
            for (p, scale_out) in scale.iter_mut().enumerate() {
                let (left_res, right_res) = resolve(p);
                let mut max_entry = 0.0f64;
                for c in 0..categories {
                    let lp = left_tables.pmat(c);
                    let rp = right_tables.pmat(c);
                    let base = (p * categories + c) * 4;
                    let l = vec4(&left_res.at_category(left_tables, c), lp, base);
                    let r = vec4(&right_res.at_category(right_tables, c), rp, base);
                    let out = &mut clv[base..base + 4];
                    for s in 0..4 {
                        let value = l[s] * r[s];
                        out[s] = value;
                        if value > max_entry {
                            max_entry = value;
                        }
                    }
                }
                *scale_out = finish_pattern(&mut clv, &left, &right, p, categories * 4, max_entry);
            }
        } else {
            // Protein: resolve a tile of patterns once, then run the
            // category loop outside the tile so each category's transition
            // matrices stay L1-resident while the tile streams through.
            let mut resolved: Vec<(ResolvedChild<'_>, ResolvedChild<'_>)> =
                Vec::with_capacity(PROTEIN_TILE);
            let mut tile_start = 0;
            while tile_start < patterns {
                let tile_len = PROTEIN_TILE.min(patterns - tile_start);
                resolved.clear();
                for p in tile_start..tile_start + tile_len {
                    // lint:allow(L007): push into the tile buffer preallocated with
                    // PROTEIN_TILE capacity above; tile_len <= PROTEIN_TILE, never reallocates.
                    resolved.push(resolve(p));
                }
                for (ti, (left_res, right_res)) in resolved.iter().enumerate() {
                    let p = tile_start + ti;
                    let mut max_entry = 0.0f64;
                    for c in 0..categories {
                        let base = (p * categories + c) * 20;
                        max_entry = fused20(
                            &left_res.at_category(left_tables, c),
                            &right_res.at_category(right_tables, c),
                            left_tables.pmat(c),
                            right_tables.pmat(c),
                            left_tables.pmat_t(c),
                            right_tables.pmat_t(c),
                            base,
                            &mut clv[base..base + 20],
                            max_entry,
                        );
                    }
                    scale[p] =
                        finish_pattern(&mut clv, &left, &right, p, categories * 20, max_entry);
                }
                tile_start += tile_len;
            }
        }
    }

    let mut cached_lookups = 0u64;
    if left_is_tip {
        cached_lookups += patterns as u64;
    }
    if right_is_tip && right_cached {
        cached_lookups += patterns as u64;
    }
    if cached_lookups > 0 {
        buffers.count_tip_hits(cached_lookups);
    }

    buffers.put_back(step.node, clv, scale)
}

/// Scale-event epilogue of one pattern: inherit the children's events, then
/// rescale the pattern block when every entry underflowed the threshold.
/// Identical logic (and identical arithmetic) to the scalar kernel.
#[inline]
fn finish_pattern(
    clv: &mut [f64],
    left: &ChildData<'_>,
    right: &ChildData<'_>,
    p: usize,
    block: usize,
    max_entry: f64,
) -> i32 {
    let mut events = 0;
    if let ChildData::Internal { scale: s, .. } = left {
        events += s[p];
    }
    if let ChildData::Internal { scale: s, .. } = right {
        events += s[p];
    }
    if max_entry < SCALE_THRESHOLD && max_entry > 0.0 {
        let base = p * block;
        for v in &mut clv[base..base + block] {
            *v *= SCALE_FACTOR;
        }
        events += 1;
    }
    events
}

/// The blocked counterpart of [`ops::evaluate_edge_tabled`]: evaluates the
/// weighted log likelihood at a virtual root with the width-specialized
/// inner loops. State widths other than 4 and 20 fall back to the scalar
/// tabled kernel.
///
/// The DNA path preserves the scalar kernel's per-state skip of zero left
/// values and its accumulation order, so it is bit-identical to the scalar
/// dispatch. The protein path is bit-identical except when the right child
/// is an internal node (the 4-lane inner product re-associates); the
/// documented lnL tolerance covers that case.
///
/// # Errors
///
/// Exactly the scalar kernel's contract ([`OpError::SliceShape`],
/// [`OpError::TableDims`], [`OpError::ClvMissing`] /
/// [`OpError::ScaleMissing`]).
pub fn evaluate_edge_blocked(
    slice: &PartitionSlice,
    buffers: &mut SliceBuffers,
    model: &PartitionModel,
    left: NodeId,
    right: NodeId,
    tables: &BranchTables,
) -> Result<f64, OpError> {
    let states = slice.states();
    if states != 4 && states != 20 {
        return ops::evaluate_edge_tabled(slice, buffers, model, left, right, tables);
    }
    let patterns = slice.pattern_count();
    check_slice_shape(slice, buffers)?;
    check_table_dims(slice, buffers, tables)?;
    let categories = tables.categories();
    let freqs = model.substitution().frequencies();
    let inv_categories = 1.0 / categories as f64;

    let right_is_tip = right < slice.n_taxa;
    if right_is_tip {
        buffers.tip_indices(slice, tables.dict_arc());
    }
    let buffers = &*buffers;
    let tip_idx = buffers.cached_tip_indices();

    let left_data = child_data(slice, buffers, left)?;
    let right_data = child_data(slice, buffers, right)?;
    let resolve = |p: usize| match &right_data {
        ChildData::Tip(t) => resolve_tip(slice, tip_idx, p, *t, true, tables),
        ChildData::Internal { clv, .. } => ResolvedChild::Clv(clv),
    };

    // Per-category site contribution of one pattern, shared by both widths:
    // the scalar kernel's s-loop with its `l_val == 0.0` skip and its
    // `(freqs[s] · l_val) · inner` multiplication order, reading the
    // precomputed right-child vector.
    #[inline(always)]
    fn cat_sum(
        left_data: &ChildData<'_>,
        slice: &PartitionSlice,
        freqs: &[f64],
        r: &[f64],
        p: usize,
        base: usize,
    ) -> f64 {
        let mut sum = 0.0;
        match left_data {
            ChildData::Tip(t) => {
                let mask = slice.tip_state(p, *t);
                for (s, &rs) in r.iter().enumerate() {
                    if mask & (1 << s) != 0 {
                        sum += freqs[s] * 1.0 * rs;
                    }
                }
            }
            ChildData::Internal { clv, .. } => {
                let l = &clv[base..base + r.len()];
                for (s, &rs) in r.iter().enumerate() {
                    let l_val = l[s];
                    if l_val == 0.0 {
                        continue;
                    }
                    sum += freqs[s] * l_val * rs;
                }
            }
        }
        sum
    }

    let mut total = 0.0;
    if states == 4 {
        for p in 0..patterns {
            let right_res = resolve(p);
            let mut site = 0.0;
            for c in 0..categories {
                let pm = tables.pmat(c);
                let base = (p * categories + c) * 4;
                let r = vec4(&right_res.at_category(tables, c), pm, base);
                site += cat_sum(&left_data, slice, freqs, &r, p, base) * inv_categories;
            }
            total += slice.weights[p] * ln_site(&left_data, &right_data, p, site);
        }
    } else {
        // Protein: tile the pattern loop with the category loop outside, so
        // one 20×20 transition matrix stays hot per tile sweep. Per-pattern
        // category contributions accumulate in c-ascending order, matching
        // the scalar kernel's summation order for `site`.
        let mut resolved: Vec<ResolvedChild<'_>> = Vec::with_capacity(PROTEIN_TILE);
        let mut tile_start = 0;
        while tile_start < patterns {
            let tile_len = PROTEIN_TILE.min(patterns - tile_start);
            resolved.clear();
            for p in tile_start..tile_start + tile_len {
                // lint:allow(L007): push into the tile buffer preallocated with
                // PROTEIN_TILE capacity above; tile_len <= PROTEIN_TILE, never reallocates.
                resolved.push(resolve(p));
            }
            let mut sites = [0.0f64; PROTEIN_TILE];
            for c in 0..categories {
                let pm = tables.pmat(c);
                for (ti, right_res) in resolved.iter().enumerate() {
                    let p = tile_start + ti;
                    let base = (p * categories + c) * 20;
                    let r = vec20(
                        &right_res.at_category(tables, c),
                        pm,
                        tables.pmat_t(c),
                        base,
                    );
                    sites[ti] += cat_sum(&left_data, slice, freqs, &r, p, base) * inv_categories;
                }
            }
            for (ti, &site) in sites.iter().take(tile_len).enumerate() {
                let p = tile_start + ti;
                total += slice.weights[p] * ln_site(&left_data, &right_data, p, site);
            }
            tile_start += tile_len;
        }
    }
    if right_is_tip {
        buffers.count_tip_hits(patterns as u64);
    }
    Ok(total)
}

/// Floored per-site log likelihood with inherited scaling events — identical
/// to the scalar kernel's epilogue.
#[inline]
fn ln_site(left_data: &ChildData<'_>, right_data: &ChildData<'_>, p: usize, site: f64) -> f64 {
    let mut events = 0;
    if let ChildData::Internal { scale, .. } = left_data {
        events += scale[p];
    }
    if let ChildData::Internal { scale, .. } = right_data {
        events += scale[p];
    }
    site.max(SITE_LIKELIHOOD_FLOOR).ln() - events as f64 * LOG_SCALE_FACTOR
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{
        build_sumtable, derivatives_from_sumtable, evaluate_edge_tabled, newview_step_tabled,
    };
    use crate::slice::WorkerSlices;
    use crate::tables::MaskDictionary;
    use phylo_data::{Alignment, DataType, PartitionSet, PartitionedPatterns};
    use phylo_models::{BranchLengthMode, ModelSet};
    use phylo_tree::{TraversalPlan, Tree};

    const AMINO: &[u8] = b"ARNDCQEGHILKMFPSTWYV";

    /// Deep protein caterpillar whose alignment compresses to more distinct
    /// patterns than one blocked tile holds. Column 0 is all-gap — its tip
    /// masks resolve to the all-ones vector, so its CLV entries stay exactly
    /// 1.0 at every depth and it can never cross [`SCALE_THRESHOLD`]; the
    /// remaining columns are pseudo-random and decay towards the threshold
    /// with every cherry join. That puts scaled and unscaled patterns side by
    /// side *inside the first tile*, which is exactly the edge the tiled
    /// scaling epilogue has to get right.
    fn deep_protein(n_taxa: usize, columns: usize, branch: f64) -> (PartitionedPatterns, Tree) {
        let names: Vec<String> = (0..n_taxa).map(|i| format!("t{i}")).collect();
        let rows: Vec<(String, String)> = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let seq: String = (0..columns)
                    .map(|j| {
                        if j == 0 {
                            '-'
                        } else {
                            // splitmix64-style mixing: plain modular formulas
                            // in i and j are periodic mod 20 and collapse the
                            // columns to a handful of patterns.
                            let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                ^ (j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
                            h ^= h >> 29;
                            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                            h ^= h >> 32;
                            AMINO[(h % 20) as usize] as char
                        }
                    })
                    .collect();
                (name.clone(), seq)
            })
            .collect();
        let aln = Alignment::new(rows).unwrap();
        let ps = PartitionSet::unpartitioned(DataType::Protein, columns);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let order: Vec<usize> = (0..n_taxa).collect();
        // Insert every new taxon on the most recent pendant branch: a chain
        // of depth ≈ n_taxa, the worst case for CLV underflow.
        let mut tree = Tree::stepwise(names, &order, |b| b - 1);
        for b in tree.branches().collect::<Vec<_>>() {
            tree.set_branch_length(b, branch);
        }
        (pp, tree)
    }

    fn setup(pp: &PartitionedPatterns, tree: &Tree, categories: usize) -> (WorkerSlices, ModelSet) {
        let models = ModelSet::with_categories(pp, BranchLengthMode::Joint, categories);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let ws = WorkerSlices::cyclic(pp, 0, 1, tree.node_capacity(), &cats);
        (ws, models)
    }

    /// `StepTables` for one step of a uniform-branch-length tree.
    fn uniform_step_tables(tables: &Arc<BranchTables>) -> StepTables {
        StepTables {
            left: Arc::clone(tables),
            right: Arc::clone(tables),
        }
    }

    #[test]
    fn scaling_threshold_crossings_inside_a_blocked_tile_match_the_scalar_path() {
        // More distinct patterns than one tile, a chain deep enough that the
        // random patterns rescale many times, and a guaranteed never-scaling
        // all-gap pattern sharing the first tile with them.
        let (pp, tree) = deep_protein(120, 48, 4.0);
        assert!(
            pp.partitions[0].pattern_count() > PROTEIN_TILE,
            "fixture must span more than one tile, got {} patterns",
            pp.partitions[0].pattern_count()
        );
        let (mut ws_tab, models) = setup(&pp, &tree, 2);
        let (mut ws_blk, _) = setup(&pp, &tree, 2);
        let model = models.model(0);
        let dict = Arc::new(MaskDictionary::for_partition(
            pp.partitions[0].data_type,
            &pp.partitions[0].tip_states,
        ));
        let tables = Arc::new(BranchTables::build(model, &dict, 4.0).unwrap());

        let root_branch = 0;
        let plan = TraversalPlan::full(&tree, root_branch);
        for step in &plan.steps {
            let st = uniform_step_tables(&tables);
            newview_step_tabled(&ws_tab.slices[0], &mut ws_tab.buffers[0], step, &st).unwrap();
            newview_step_blocked(&ws_blk.slices[0], &mut ws_blk.buffers[0], step, &st).unwrap();
            // Scaling decisions are *identical*, not just equivalent: the
            // blocked tile compares the same set of values against the same
            // threshold, so the event counts must match element for element
            // even when a pattern crosses the threshold mid-tile.
            assert_eq!(
                ws_tab.buffers[0].scale(step.node),
                ws_blk.buffers[0].scale(step.node),
                "scale events diverged at node {}",
                step.node
            );
            let reference = ws_tab.buffers[0].clv(step.node).unwrap();
            let blocked = ws_blk.buffers[0].clv(step.node).unwrap();
            assert_eq!(reference.len(), blocked.len());
            for (i, (&a, &b)) in reference.iter().zip(blocked.iter()).enumerate() {
                let tol = 1e-9 * a.abs().max(b.abs()).max(1e-300);
                assert!(
                    (a - b).abs() <= tol,
                    "CLV entry {i} at node {} diverged: {a} vs {b}",
                    step.node
                );
            }
        }

        // The deepest internal node has seen every join: its scale row must
        // mix zero events (the all-gap pattern) with many events (the random
        // patterns) inside the first tile.
        let root_node = plan.steps.last().unwrap().node;
        let scale = ws_blk.buffers[0].scale(root_node).unwrap();
        let tile = &scale[..PROTEIN_TILE];
        assert_eq!(tile[0], 0, "the all-gap pattern must never rescale");
        let max_events = *tile.iter().max().unwrap();
        assert!(
            max_events > 0,
            "the random patterns must cross the threshold at least once"
        );

        // And the two dispatches agree on the resulting likelihood.
        let (a, b) = tree.branch_endpoints(root_branch);
        let reference = evaluate_edge_tabled(
            &ws_tab.slices[0],
            &mut ws_tab.buffers[0],
            model,
            a,
            b,
            &tables,
        )
        .unwrap();
        let blocked = evaluate_edge_blocked(
            &ws_blk.slices[0],
            &mut ws_blk.buffers[0],
            model,
            a,
            b,
            &tables,
        )
        .unwrap();
        assert!(reference.is_finite());
        assert!(
            (reference - blocked).abs() <= 1e-12 * reference.abs(),
            "lnL diverged: {reference} vs {blocked}"
        );
    }

    #[test]
    fn derivative_floor_clamp_holds_on_blocked_clvs() {
        // The PR-5 regression on the blocked path: CLVs produced by the
        // blocked kernel feed `build_sumtable`, and a site whose likelihood
        // underflows to the floor must contribute clamped (zero) derivative
        // ratios instead of `f1 / 1e-300` explosions. First the honest
        // variant — a saturated deep chain probed across the entire branch
        // length range must keep Newton's inputs finite — then the exact
        // clamp on a hand-floored table.
        let (pp, tree) = deep_protein(120, 48, 4.0);
        let (mut ws, models) = setup(&pp, &tree, 2);
        let model = models.model(0);
        let dict = Arc::new(MaskDictionary::for_partition(
            pp.partitions[0].data_type,
            &pp.partitions[0].tip_states,
        ));
        let tables = Arc::new(BranchTables::build(model, &dict, 4.0).unwrap());
        let root_branch = 0;
        for step in &TraversalPlan::full(&tree, root_branch).steps {
            let st = uniform_step_tables(&tables);
            newview_step_blocked(&ws.slices[0], &mut ws.buffers[0], step, &st).unwrap();
        }
        let (a, b) = tree.branch_endpoints(root_branch);
        build_sumtable(&ws.slices[0], &mut ws.buffers[0], model, a, b).unwrap();

        for t in [phylo_tree::topology::MIN_BRANCH_LENGTH, 1e-4, 0.3, 10.0] {
            let d = derivatives_from_sumtable(&ws.slices[0], &ws.buffers[0], model, t).unwrap();
            assert!(
                d.log_likelihood.is_finite() && d.first.is_finite() && d.second.is_finite(),
                "non-finite derivatives at t = {t}: {d:?}"
            );
        }

        // Force every site onto the floor: the clamp must zero the ratios
        // exactly, never feed Newton a floored division.
        {
            let (table, _) = ws.buffers[0].sumtable_mut();
            for v in table.iter_mut() {
                *v = 0.0;
            }
        }
        let d = derivatives_from_sumtable(&ws.slices[0], &ws.buffers[0], model, 0.3).unwrap();
        assert!(d.log_likelihood.is_finite());
        assert!(d.log_likelihood < -100.0, "floored sites are very bad");
        assert_eq!(d.first, 0.0, "floored sites must not push Newton");
        assert_eq!(d.second, 0.0);
    }
}
