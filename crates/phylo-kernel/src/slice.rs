//! Per-worker pattern slices and likelihood-vector buffers.
//!
//! The paper's parallelization assigns the `m′` distinct alignment patterns to
//! worker threads cyclically (pattern `g` goes to thread `g mod T`), which
//! balances mixed DNA/protein inputs. Each worker owns, for every partition,
//! the tip states and weights of *its* patterns and the conditional likelihood
//! vectors (CLVs) over those patterns. Nothing is shared between workers
//! except through reductions, which is exactly the Pthreads layout of RAxML
//! and what makes the scheme data-race free by construction.
//!
//! Which worker owns which pattern is decided *outside* this module: the
//! `phylo-sched` crate produces an explicit owner map (its `Assignment` type)
//! from a pluggable scheduling strategy, and
//! [`WorkerSlices::from_assignment`] materializes one worker's view of it.
//! The [`WorkerSlices::cyclic`] and [`WorkerSlices::block`] constructors
//! remain as the two fixed schemes of the paper (and as the reference
//! implementations the scheduler's strategies are tested against); arbitrary
//! assignment functions go through [`WorkerSlices::with_assignment`].

use std::cell::Cell;
use std::sync::Arc;

use phylo_data::{DataType, EncodedState, PartitionedPatterns};

use crate::error::OpError;
use crate::tables::{KernelDispatch, MaskDictionary};

/// Sentinel in the tip-index cache for a mask outside the dictionary (the
/// kernels then fall back to the reference bit loop for that pattern).
pub const TIP_INDEX_NONE: u32 = u32::MAX;

/// One worker's view of one partition: the locally owned patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSlice {
    /// Index of the partition in the dataset.
    pub partition: usize,
    /// Data type (4 or 20 states).
    pub data_type: DataType,
    /// Number of taxa.
    pub n_taxa: usize,
    /// Tip states of the local patterns, pattern-major
    /// (`tip_states[p * n_taxa + t]`).
    pub tip_states: Vec<EncodedState>,
    /// Pattern weights of the local patterns.
    pub weights: Vec<f64>,
    /// Global pattern indices of the local patterns (diagnostics only).
    pub global_indices: Vec<usize>,
}

impl PartitionSlice {
    /// Number of locally owned patterns.
    pub fn pattern_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of character states.
    pub fn states(&self) -> usize {
        self.data_type.states()
    }

    /// Tip state of `taxon` at local pattern `pattern`.
    #[inline]
    pub fn tip_state(&self, pattern: usize, taxon: usize) -> EncodedState {
        self.tip_states[pattern * self.n_taxa + taxon]
    }
}

/// The CLV and scaling buffers a worker owns for one partition.
#[derive(Debug, Clone)]
pub struct SliceBuffers {
    patterns: usize,
    states: usize,
    categories: usize,
    node_capacity: usize,
    /// CLVs per internal node (lazily allocated); length
    /// `patterns × categories × states`, layout `[pattern][category][state]`.
    clvs: Vec<Option<Vec<f64>>>,
    /// Per-node, per-pattern scaling event counters.
    scales: Vec<Option<Vec<i32>>>,
    /// Sum table for the branch currently being optimized; length
    /// `patterns × categories × states`.
    sumtable: Vec<f64>,
    /// Scaling counter total for the branch the sum table was built for.
    sumtable_scale: Vec<i32>,
    /// Tip-state → dictionary-index cache, pattern-major
    /// (`tip_indices[p * n_taxa + t]`, [`TIP_INDEX_NONE`] = not in the
    /// dictionary). Built lazily by [`SliceBuffers::tip_indices`].
    tip_indices: Vec<u32>,
    /// Arc identity of the dictionary the cache was built for (0 = unbuilt).
    tip_dict_key: usize,
    /// Lookups served from the cache (each one an avoided dictionary
    /// search). `Cell`: counted while the CLVs are borrowed immutably.
    tip_hits: Cell<u64>,
    /// Dictionary searches performed while (re)building the cache.
    tip_misses: Cell<u64>,
    /// Number of cache (re)builds.
    tip_builds: Cell<u64>,
    /// Pattern-steps processed by the blocked tabled kernels since the last
    /// drain (per-dispatch region throughput accounting).
    dispatch_blocked: Cell<u64>,
    /// Pattern-steps processed by the scalar tabled kernels since the last
    /// drain.
    dispatch_scalar: Cell<u64>,
}

impl SliceBuffers {
    /// Allocates buffers for a slice with `patterns` local patterns on a tree
    /// with `node_capacity` node slots and a model with `categories` rate
    /// categories.
    pub fn new(patterns: usize, states: usize, categories: usize, node_capacity: usize) -> Self {
        Self {
            patterns,
            states,
            categories,
            node_capacity,
            clvs: vec![None; node_capacity],
            scales: vec![None; node_capacity],
            sumtable: Vec::new(),
            sumtable_scale: Vec::new(),
            tip_indices: Vec::new(),
            tip_dict_key: 0,
            tip_hits: Cell::new(0),
            tip_misses: Cell::new(0),
            tip_builds: Cell::new(0),
            dispatch_blocked: Cell::new(0),
            dispatch_scalar: Cell::new(0),
        }
    }

    /// Number of local patterns.
    pub fn patterns(&self) -> usize {
        self.patterns
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Number of rate categories.
    pub fn categories(&self) -> usize {
        self.categories
    }

    /// Length of one CLV (`patterns × categories × states`).
    pub fn clv_len(&self) -> usize {
        self.patterns * self.categories * self.states
    }

    /// Returns the CLV of `node`, allocating it zero-filled on first use.
    pub fn clv_mut(&mut self, node: usize) -> &mut Vec<f64> {
        let len = self.clv_len();
        self.clvs[node].get_or_insert_with(|| vec![0.0; len])
    }

    /// Returns the CLV of `node` if it has been computed before.
    pub fn clv(&self, node: usize) -> Option<&Vec<f64>> {
        self.clvs[node].as_ref()
    }

    /// Returns the scaling counters of `node`, allocating on first use.
    pub fn scale_mut(&mut self, node: usize) -> &mut Vec<i32> {
        let len = self.patterns;
        self.scales[node].get_or_insert_with(|| vec![0; len])
    }

    /// Returns the scaling counters of `node` if present.
    pub fn scale(&self, node: usize) -> Option<&Vec<i32>> {
        self.scales[node].as_ref()
    }

    /// Takes the CLV and scale buffers of `node` out of the store, so that a
    /// new CLV can be computed into them while the children's CLVs are still
    /// borrowed immutably. [`SliceBuffers::put_back`] returns them.
    pub fn take_node(&mut self, node: usize) -> (Vec<f64>, Vec<i32>) {
        let len = self.clv_len();
        let clv = self.clvs[node].take().unwrap_or_else(|| vec![0.0; len]);
        let scale = self.scales[node]
            .take()
            .unwrap_or_else(|| vec![0; self.patterns]);
        (clv, scale)
    }

    /// Returns buffers previously removed with [`SliceBuffers::take_node`].
    ///
    /// # Errors
    ///
    /// [`OpError::ClvShape`] / [`OpError::ScaleShape`] when the returned
    /// buffers do not match the slice shape. This used to be a
    /// `debug_assert_eq!` — release builds silently stored mismatched CLVs
    /// (e.g. ones computed for a different local pattern count after a
    /// mid-round migration), corrupting every later read. The buffers are
    /// *not* stored on error.
    pub fn put_back(&mut self, node: usize, clv: Vec<f64>, scale: Vec<i32>) -> Result<(), OpError> {
        if clv.len() != self.clv_len() {
            return Err(OpError::ClvShape {
                node,
                expected: self.clv_len(),
                got: clv.len(),
            });
        }
        if scale.len() != self.patterns {
            return Err(OpError::ScaleShape {
                node,
                expected: self.patterns,
                got: scale.len(),
            });
        }
        self.clvs[node] = Some(clv);
        self.scales[node] = Some(scale);
        Ok(())
    }

    /// Drops the branch sum table (and its scale counters), so that a later
    /// derivative evaluation fails with a typed
    /// [`OpError::SumtableStale`] instead of silently reading
    /// stale values. Reassignment paths rebuild the buffers from scratch
    /// (fresh, empty sum tables); this is the explicit form for callers that
    /// reuse buffers across a change that invalidates the table.
    pub fn invalidate_sumtable(&mut self) {
        self.sumtable.clear();
        self.sumtable_scale.clear();
    }

    /// The branch sum table (empty until
    /// [`crate::ops::build_sumtable`] fills it).
    pub fn sumtable(&self) -> &[f64] {
        &self.sumtable
    }

    /// Scaling counters accompanying the sum table.
    pub fn sumtable_scale(&self) -> &[i32] {
        &self.sumtable_scale
    }

    /// Mutable access for the sum-table builder.
    pub fn sumtable_mut(&mut self) -> (&mut Vec<f64>, &mut Vec<i32>) {
        (&mut self.sumtable, &mut self.sumtable_scale)
    }

    /// Ensures the tip-index cache is built for `dict` and returns it.
    ///
    /// The cache translates every `(pattern, taxon)` tip-state mask of the
    /// slice to its [`MaskDictionary`] index **once per slice**, so the
    /// tabled kernels read an array entry per pattern instead of redoing the
    /// binary search per `newview`/`evaluate` call (the protein-partition hot
    /// spot). Entries are [`TIP_INDEX_NONE`] for masks outside the
    /// dictionary. The cache is keyed on the dictionary's `Arc` identity:
    /// passing a different dictionary (or a rebuilt slice after migration)
    /// rebuilds it.
    pub fn tip_indices(&mut self, slice: &PartitionSlice, dict: &Arc<MaskDictionary>) -> &[u32] {
        let key = Arc::as_ptr(dict) as usize;
        if self.tip_dict_key != key {
            self.tip_indices.clear();
            self.tip_indices.reserve(slice.tip_states.len());
            for &mask in &slice.tip_states {
                let index = dict.index_of(mask).map_or(TIP_INDEX_NONE, |i| i as u32);
                // lint:allow(L007): once-per-(slice, dictionary) cache rebuild, sized by
                // the reserve() above; amortized across ops, not a per-pattern allocation.
                self.tip_indices.push(index);
            }
            self.tip_dict_key = key;
            self.tip_builds.set(self.tip_builds.get() + 1);
            self.tip_misses
                .set(self.tip_misses.get() + slice.tip_states.len() as u64);
        }
        &self.tip_indices
    }

    /// The current cache contents without (re)building. Valid only after a
    /// [`SliceBuffers::tip_indices`] call with the live dictionary — the
    /// kernels ensure first, then read through this while the CLVs hold
    /// immutable borrows of the buffers.
    #[inline]
    pub fn cached_tip_indices(&self) -> &[u32] {
        &self.tip_indices
    }

    /// Counts `n` tip lookups served from the cache (each one an avoided
    /// dictionary search). Interior mutability so the kernels can count while
    /// the CLV buffers are borrowed.
    #[inline]
    pub fn count_tip_hits(&self, n: u64) {
        self.tip_hits.set(self.tip_hits.get() + n);
    }

    /// Counts `n` pattern-steps executed under `dispatch` by the tabled
    /// kernels (the per-dispatch region-throughput accounting surfaced to
    /// telemetry). Interior mutability for the same reason as the tip-cache
    /// counters.
    #[inline]
    pub fn count_dispatch_patterns(&self, dispatch: KernelDispatch, n: u64) {
        let cell = match dispatch {
            KernelDispatch::Blocked => &self.dispatch_blocked,
            KernelDispatch::Scalar => &self.dispatch_scalar,
        };
        cell.set(cell.get() + n);
    }

    /// Drains the per-dispatch pattern-step counters:
    /// `(blocked, scalar)` since the last drain.
    pub fn take_dispatch_counters(&self) -> (u64, u64) {
        (self.dispatch_blocked.take(), self.dispatch_scalar.take())
    }

    /// Current tip-index cache counters: `(hits, misses, builds)`.
    pub fn tip_cache_counters(&self) -> (u64, u64, u64) {
        (
            self.tip_hits.get(),
            self.tip_misses.get(),
            self.tip_builds.get(),
        )
    }

    /// Drains the tip-index cache counters: `(hits, misses, builds)` since
    /// the last drain. Executors ship these per-region deltas to telemetry.
    pub fn take_tip_cache_counters(&self) -> (u64, u64, u64) {
        (
            self.tip_hits.take(),
            self.tip_misses.take(),
            self.tip_builds.take(),
        )
    }

    /// Total number of bytes currently allocated for CLVs (diagnostics).
    pub fn allocated_bytes(&self) -> usize {
        self.clvs
            .iter()
            .flatten()
            .map(|v| v.len() * std::mem::size_of::<f64>())
            .sum()
    }

    /// Node capacity the buffers were sized for.
    pub fn node_capacity(&self) -> usize {
        self.node_capacity
    }
}

/// Everything one worker owns: a slice and a buffer per partition.
#[derive(Debug, Clone)]
pub struct WorkerSlices {
    /// Worker index in `0..worker_count`.
    pub worker: usize,
    /// Total number of workers the patterns were distributed over.
    pub worker_count: usize,
    /// One slice per partition (same order as the dataset's partitions).
    pub slices: Vec<PartitionSlice>,
    /// One buffer per partition.
    pub buffers: Vec<SliceBuffers>,
}

impl WorkerSlices {
    /// Builds worker `worker` of `worker_count` from the compiled patterns,
    /// assigning global pattern `g` to worker `g mod worker_count` (the
    /// paper's cyclic distribution) and sizing the CLV buffers for a tree with
    /// `node_capacity` node slots and models with `categories` rate
    /// categories per partition.
    pub fn cyclic(
        patterns: &PartitionedPatterns,
        worker: usize,
        worker_count: usize,
        node_capacity: usize,
        categories: &[usize],
    ) -> Self {
        Self::with_assignment(
            patterns,
            worker,
            worker_count,
            node_capacity,
            categories,
            |g| g % worker_count,
        )
    }

    /// Builds worker `worker` with a *block* distribution: the global pattern
    /// index space is cut into `worker_count` contiguous chunks. This is the
    /// alternative the paper argues against for mixed DNA/protein inputs; the
    /// ablation benches compare the two.
    pub fn block(
        patterns: &PartitionedPatterns,
        worker: usize,
        worker_count: usize,
        node_capacity: usize,
        categories: &[usize],
    ) -> Self {
        let total = patterns.total_patterns();
        let chunk = total.div_ceil(worker_count).max(1);
        Self::with_assignment(
            patterns,
            worker,
            worker_count,
            node_capacity,
            categories,
            |g| (g / chunk).min(worker_count - 1),
        )
    }

    /// Builds worker `worker` from an explicit owner map: `owners[g]` is the
    /// worker owning global pattern `g`, as produced by a `phylo-sched`
    /// scheduling strategy (`Assignment::owner()`).
    ///
    /// # Panics
    ///
    /// Panics if `owners` does not cover exactly the dataset's patterns, if
    /// `worker >= worker_count`, or if `categories` does not match the
    /// partition count.
    pub fn from_assignment(
        patterns: &PartitionedPatterns,
        worker: usize,
        worker_count: usize,
        node_capacity: usize,
        categories: &[usize],
        owners: &[usize],
    ) -> Self {
        assert_eq!(
            owners.len(),
            patterns.total_patterns(),
            "owner map must cover every global pattern"
        );
        assert!(
            owners.iter().all(|&w| w < worker_count),
            "owner map names a worker outside 0..{worker_count}"
        );
        Self::with_assignment(
            patterns,
            worker,
            worker_count,
            node_capacity,
            categories,
            |g| owners[g],
        )
    }

    /// Builds worker `worker` of `worker_count` with an arbitrary assignment
    /// function from global pattern index to owning worker.
    pub fn with_assignment<F: Fn(usize) -> usize>(
        patterns: &PartitionedPatterns,
        worker: usize,
        worker_count: usize,
        node_capacity: usize,
        categories: &[usize],
        assign: F,
    ) -> Self {
        assert!(worker < worker_count, "worker index out of range");
        assert_eq!(categories.len(), patterns.partition_count());
        let mut slices = Vec::with_capacity(patterns.partition_count());
        let mut buffers = Vec::with_capacity(patterns.partition_count());
        for (pi, part) in patterns.partitions.iter().enumerate() {
            let offset = patterns.global_offset(pi);
            let n_taxa = part.n_taxa;
            let mut tip_states = Vec::new();
            let mut weights = Vec::new();
            let mut global_indices = Vec::new();
            for local in 0..part.pattern_count() {
                let global = offset + local;
                if assign(global) != worker {
                    continue;
                }
                tip_states.extend_from_slice(part.pattern_states(local));
                weights.push(part.weights[local]);
                global_indices.push(global);
            }
            let slice = PartitionSlice {
                partition: pi,
                data_type: part.data_type,
                n_taxa,
                tip_states,
                weights,
                global_indices,
            };
            let buffer = SliceBuffers::new(
                slice.pattern_count(),
                part.data_type.states(),
                categories[pi],
                node_capacity,
            );
            slices.push(slice);
            buffers.push(buffer);
        }
        Self {
            worker,
            worker_count,
            slices,
            buffers,
        }
    }

    /// Total number of local patterns across all partitions.
    pub fn total_patterns(&self) -> usize {
        self.slices.iter().map(|s| s.pattern_count()).sum()
    }

    /// Local pattern count of one partition.
    pub fn partition_patterns(&self, partition: usize) -> usize {
        self.slices[partition].pattern_count()
    }

    /// Drains the tip-index cache counters of every partition buffer, summed:
    /// `(hits, misses, builds)` since the last drain.
    pub fn take_tip_cache_counters(&self) -> (u64, u64, u64) {
        let mut total = (0, 0, 0);
        for buffer in &self.buffers {
            let (h, m, b) = buffer.take_tip_cache_counters();
            total.0 += h;
            total.1 += m;
            total.2 += b;
        }
        total
    }

    /// Drains the per-dispatch pattern-step counters of every partition
    /// buffer, summed: `(blocked, scalar)` since the last drain.
    pub fn take_dispatch_counters(&self) -> (u64, u64) {
        let mut total = (0, 0);
        for buffer in &self.buffers {
            let (b, s) = buffer.take_dispatch_counters();
            total.0 += b;
            total.1 += s;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_data::{Alignment, DataType, PartitionSet, PartitionedPatterns};

    fn patterns() -> PartitionedPatterns {
        let aln = Alignment::new(vec![
            ("t1".into(), "ACGTACGTACGTACGTAAGG".into()),
            ("t2".into(), "ACGTACGAACGTACGAAAGC".into()),
            ("t3".into(), "ACCTACGAACCTACGAATGC".into()),
        ])
        .unwrap();
        let ps = PartitionSet::equal_length(DataType::Dna, 20, 5);
        PartitionedPatterns::compile(&aln, &ps).unwrap()
    }

    #[test]
    fn cyclic_distribution_covers_every_pattern_once() {
        let pp = patterns();
        let categories = vec![4; pp.partition_count()];
        let workers: Vec<WorkerSlices> = (0..3)
            .map(|w| WorkerSlices::cyclic(&pp, w, 3, 8, &categories))
            .collect();
        let total: usize = workers.iter().map(|w| w.total_patterns()).sum();
        assert_eq!(total, pp.total_patterns());
        // Global indices across workers are disjoint and complete.
        let mut all: Vec<usize> = workers
            .iter()
            .flat_map(|w| w.slices.iter().flat_map(|s| s.global_indices.clone()))
            .collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..pp.total_patterns()).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn cyclic_distribution_is_balanced() {
        let pp = patterns();
        let categories = vec![4; pp.partition_count()];
        let counts: Vec<usize> = (0..4)
            .map(|w| WorkerSlices::cyclic(&pp, w, 4, 8, &categories).total_patterns())
            .collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max - min <= 1,
            "cyclic distribution must be balanced: {counts:?}"
        );
    }

    #[test]
    fn single_worker_owns_everything() {
        let pp = patterns();
        let categories = vec![4; pp.partition_count()];
        let w = WorkerSlices::cyclic(&pp, 0, 1, 8, &categories);
        assert_eq!(w.total_patterns(), pp.total_patterns());
        for (slice, part) in w.slices.iter().zip(pp.partitions.iter()) {
            assert_eq!(slice.pattern_count(), part.pattern_count());
            assert_eq!(slice.tip_states, part.tip_states);
        }
    }

    #[test]
    fn more_workers_than_patterns_leaves_some_empty() {
        // This is exactly the situation the paper describes: short partitions
        // and many threads mean some threads have no pattern of a partition.
        let pp = patterns();
        let categories = vec![4; pp.partition_count()];
        let workers: Vec<WorkerSlices> = (0..16)
            .map(|w| WorkerSlices::cyclic(&pp, w, 16, 8, &categories))
            .collect();
        let empty_slices = workers
            .iter()
            .flat_map(|w| w.slices.iter())
            .filter(|s| s.pattern_count() == 0)
            .count();
        assert!(
            empty_slices > 0,
            "expected idle (empty) slices with 16 workers"
        );
    }

    #[test]
    fn from_assignment_matches_cyclic_owner_map() {
        let pp = patterns();
        let categories = vec![4; pp.partition_count()];
        let owners: Vec<usize> = (0..pp.total_patterns()).map(|g| g % 3).collect();
        for w in 0..3 {
            let via_map = WorkerSlices::from_assignment(&pp, w, 3, 8, &categories, &owners);
            let via_cyclic = WorkerSlices::cyclic(&pp, w, 3, 8, &categories);
            assert_eq!(via_map.slices, via_cyclic.slices);
        }
    }

    #[test]
    #[should_panic(expected = "owner map names a worker outside")]
    fn from_assignment_rejects_out_of_range_owners() {
        let pp = patterns();
        let categories = vec![4; pp.partition_count()];
        let owners: Vec<usize> = (0..pp.total_patterns()).map(|g| g % 3).collect();
        let _ = WorkerSlices::from_assignment(&pp, 0, 2, 8, &categories, &owners);
    }

    #[test]
    #[should_panic(expected = "owner map must cover every global pattern")]
    fn from_assignment_rejects_short_owner_maps() {
        let pp = patterns();
        let categories = vec![4; pp.partition_count()];
        let owners = vec![0; pp.total_patterns() - 1];
        let _ = WorkerSlices::from_assignment(&pp, 0, 2, 8, &categories, &owners);
    }

    #[test]
    fn buffers_allocate_lazily_and_round_trip() {
        let pp = patterns();
        let categories = vec![4; pp.partition_count()];
        let mut w = WorkerSlices::cyclic(&pp, 0, 2, 8, &categories);
        let buf = &mut w.buffers[0];
        assert_eq!(buf.allocated_bytes(), 0);
        assert!(buf.clv(5).is_none());
        buf.clv_mut(5)[0] = 1.25;
        assert_eq!(buf.clv(5).unwrap()[0], 1.25);
        assert!(buf.allocated_bytes() > 0);

        let (mut clv, mut scale) = buf.take_node(5);
        clv[1] = 2.5;
        scale[0] = 3;
        buf.put_back(5, clv, scale).unwrap();
        assert_eq!(buf.clv(5).unwrap()[1], 2.5);
        assert_eq!(buf.scale(5).unwrap()[0], 3);
    }

    #[test]
    fn put_back_rejects_mismatched_shapes_in_release_builds() {
        let pp = patterns();
        let categories = vec![4; pp.partition_count()];
        let mut w = WorkerSlices::cyclic(&pp, 0, 2, 8, &categories);
        let buf = &mut w.buffers[0];
        let (clv, scale) = buf.take_node(5);

        // A CLV computed for a different pattern count (the post-migration
        // staleness hazard) must fail as a typed value, not a debug_assert.
        let short_clv = vec![0.0; clv.len().saturating_sub(1)];
        let err = buf.put_back(5, short_clv, scale.clone()).unwrap_err();
        assert!(matches!(err, OpError::ClvShape { node: 5, .. }), "{err:?}");

        let short_scale = vec![0; scale.len() + 2];
        let err = buf.put_back(5, clv.clone(), short_scale).unwrap_err();
        assert!(
            matches!(err, OpError::ScaleShape { node: 5, .. }),
            "{err:?}"
        );

        // Nothing was stored by the failed calls.
        assert!(buf.clv(5).is_none());
        buf.put_back(5, clv, scale).unwrap();
        assert!(buf.clv(5).is_some());
    }

    #[test]
    fn invalidate_sumtable_empties_both_buffers() {
        let pp = patterns();
        let categories = vec![4; pp.partition_count()];
        let mut w = WorkerSlices::cyclic(&pp, 0, 1, 8, &categories);
        let buf = &mut w.buffers[0];
        let len = buf.clv_len();
        {
            let (t, s) = buf.sumtable_mut();
            t.resize(len, 1.0);
            s.resize(3, 1);
        }
        assert!(!buf.sumtable().is_empty());
        buf.invalidate_sumtable();
        assert!(buf.sumtable().is_empty());
        assert!(buf.sumtable_scale().is_empty());
    }

    #[test]
    fn tip_index_cache_builds_once_per_dictionary_and_counts() {
        let pp = patterns();
        let categories = vec![4; pp.partition_count()];
        let mut w = WorkerSlices::cyclic(&pp, 0, 2, 8, &categories);
        let part = &pp.partitions[0];
        let dict = Arc::new(MaskDictionary::for_partition(
            part.data_type,
            &part.tip_states,
        ));
        let slice = w.slices[0].clone();
        let buf = &mut w.buffers[0];
        let n = slice.tip_states.len();

        // First call builds: every entry matches a direct dictionary lookup.
        let cached: Vec<u32> = buf.tip_indices(&slice, &dict).to_vec();
        assert_eq!(cached.len(), n);
        for p in 0..slice.pattern_count() {
            for t in 0..slice.n_taxa {
                let mask = slice.tip_state(p, t);
                let expected = dict.index_of(mask).map_or(TIP_INDEX_NONE, |i| i as u32);
                assert_eq!(cached[p * slice.n_taxa + t], expected);
            }
        }
        assert_eq!(buf.tip_cache_counters(), (0, n as u64, 1));

        // Same dictionary: no rebuild. Hits are counted by the caller.
        let _ = buf.tip_indices(&slice, &dict);
        buf.count_tip_hits(7);
        assert_eq!(buf.tip_cache_counters(), (7, n as u64, 1));

        // A different dictionary Arc rebuilds.
        let other = Arc::new(MaskDictionary::for_partition(
            part.data_type,
            &part.tip_states,
        ));
        let _ = buf.tip_indices(&slice, &other);
        assert_eq!(buf.tip_cache_counters(), (7, 2 * n as u64, 2));

        // Draining resets and sums across a worker's buffers.
        let (h, m, b) = w.take_tip_cache_counters();
        assert_eq!((h, m, b), (7, 2 * n as u64, 2));
        assert_eq!(w.take_tip_cache_counters(), (0, 0, 0));
    }

    #[test]
    fn tip_state_accessor_matches_source() {
        let pp = patterns();
        let categories = vec![4; pp.partition_count()];
        let w = WorkerSlices::cyclic(&pp, 1, 2, 8, &categories);
        for slice in &w.slices {
            let part = &pp.partitions[slice.partition];
            for (local, &global) in slice.global_indices.iter().enumerate() {
                let local_in_part = global - pp.global_offset(slice.partition);
                for t in 0..slice.n_taxa {
                    assert_eq!(slice.tip_state(local, t), part.tip_state(local_in_part, t));
                }
            }
        }
    }
}
