//! The Phylogenetic Likelihood Kernel (PLK).
//!
//! This crate is the paper's primary subject: the computation of the
//! likelihood of a partitioned multiple sequence alignment on a fixed unrooted
//! binary tree, organized so that the `m′` alignment patterns can be
//! distributed over worker threads and so that the iterative optimizers can be
//! run either per partition (the *oldPAR* scheme) or simultaneously over all
//! partitions (the *newPAR* scheme).
//!
//! The crate is layered:
//!
//! * [`slice`](mod@slice) — the per-worker view of a partition's patterns (cyclic
//!   distribution) and the conditional likelihood vector (CLV) buffers that
//!   belong to it,
//! * [`ops`] — the numerical core: `newview` (CLV update), `evaluate`
//!   (log-likelihood at the virtual root), the branch sum table and the
//!   analytic first/second derivatives with respect to a branch length,
//! * [`branch_lengths`] — joint vs per-partition branch-length storage,
//! * [`validity`] — the master-side cache that tracks which CLVs are still
//!   valid (and in which orientation) so that partial traversals can be used,
//! * [`tables`] — shared per-branch transition and tip-lookup tables
//!   ([`tables::BranchTables`]): computed once by the master, shared
//!   read-only (`Arc`) across workers inside the command payload, replacing
//!   the per-call recomputation of the transition matrices and the
//!   per-pattern tip bit loops,
//! * [`blocked`] — the cache-blocked, width-specialized tabled inner loops
//!   selected by [`tables::KernelDispatch::Blocked`] (the fast default; the
//!   scalar tabled loops in [`ops`] stay as the bit-for-bit-comparable
//!   reference dispatch),
//! * [`cost`] — an analytic floating-point cost model of the kernel
//!   primitives, used by the instrumented executor and the platform model,
//! * [`executor`] — the [`Executor`] abstraction: a
//!   synchronous "command" interface exactly like the master/worker protocol
//!   of the Pthreads RAxML, plus the sequential reference implementation;
//!   `execute` is fallible so a lost worker surfaces as a value,
//! * [`error`] — [`KernelError`], the unified error the
//!   engine's `try_*` methods return,
//! * [`engine`] — [`LikelihoodKernel`], the
//!   high-level object that owns tree, models and branch lengths and exposes
//!   likelihood evaluation, CLV management and derivative computation to the
//!   optimizers and the tree search,
//! * [`naive`] — an intentionally simple reference implementation used by the
//!   test-suite to cross-validate the optimized kernel.
//!
//! ```
//! use std::sync::Arc;
//! use phylo_data::{Alignment, DataType, PartitionSet, PartitionedPatterns};
//! use phylo_kernel::SequentialKernel;
//! use phylo_models::{BranchLengthMode, ModelSet};
//! use phylo_tree::newick;
//!
//! let alignment = Alignment::new(vec![
//!     ("t1".into(), "ACGTACGTAC".into()),
//!     ("t2".into(), "ACGAACGAAC".into()),
//!     ("t3".into(), "ACCTACGTAC".into()),
//!     ("t4".into(), "ACGTACGAAT".into()),
//! ]).unwrap();
//! let partitions = PartitionSet::unpartitioned(DataType::Dna, 10);
//! let patterns = Arc::new(PartitionedPatterns::compile(&alignment, &partitions).unwrap());
//! let tree = newick::parse_newick("((t1,t2),(t3,t4));").unwrap();
//! let models = ModelSet::default_for(&patterns, BranchLengthMode::Joint);
//!
//! let mut kernel = SequentialKernel::build(patterns, tree, models).unwrap();
//! let lnl = kernel.try_log_likelihood().unwrap();
//! assert!(lnl.is_finite() && lnl < 0.0);
//! // A second evaluation reuses every cached CLV: zero updates needed.
//! let root = kernel.default_root_branch();
//! assert_eq!(kernel.try_update_clvs(root, &kernel.full_mask()).unwrap(), 0);
//! ```

#![forbid(unsafe_code)]

pub mod blocked;
pub mod branch_lengths;
pub mod cost;
pub mod engine;
pub mod error;
pub mod executor;
pub mod naive;
pub mod ops;
pub mod slice;
pub mod tables;
pub mod validity;

pub use branch_lengths::BranchLengths;
pub use cost::{TraceError, TraceUnit, WorkTrace};
pub use engine::{KernelStats, LikelihoodKernel, SequentialKernel};
pub use error::{KernelError, OpError};
pub use executor::{
    ExecContext, ExecError, Executor, KernelOp, OpOutput, PartitionMask, SequentialExecutor,
};
pub use slice::{PartitionSlice, SliceBuffers, WorkerSlices};
pub use tables::{
    BranchTables, EdgeTables, KernelDispatch, MaskDictionary, NewviewTables, StepTables,
};
pub use validity::ClvValidity;

/// Numerical scaling threshold: when every CLV entry of a pattern drops below
/// this value the pattern is rescaled to avoid underflow.
pub const SCALE_THRESHOLD: f64 = 1.0e-100;
/// Multiplier applied when rescaling (the inverse of [`SCALE_THRESHOLD`]).
pub const SCALE_FACTOR: f64 = 1.0e100;
/// Natural logarithm of [`SCALE_FACTOR`]; subtracted once per scaling event
/// when assembling per-site log likelihoods.
pub const LOG_SCALE_FACTOR: f64 = 230.25850929940457;
