//! Partition definitions for multi-gene (phylogenomic) analyses.
//!
//! A partition assigns a contiguous (or scattered) set of alignment columns to
//! one gene/model: each partition gets its own Q matrix, α shape parameter and
//! — in the per-partition branch-length model — its own branch lengths. The
//! syntax follows RAxML partition files:
//!
//! ```text
//! DNA, gene0 = 1-1000
//! DNA, gene1 = 1001-2000
//! WAG, geneA = 2001-2500, 3001-3200
//! ```
//!
//! Column indices in files are 1-based and inclusive, as in RAxML; internally
//! everything is converted to 0-based half-open ranges.

use crate::alphabet::DataType;
use crate::error::DataError;

/// A single partition: a named set of alignment columns with a data type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Partition (gene) name.
    pub name: String,
    /// Data type of the partition's columns.
    pub data_type: DataType,
    /// Zero-based, half-open column ranges, in ascending order.
    pub ranges: Vec<std::ops::Range<usize>>,
}

impl Partition {
    /// Creates a partition covering a single contiguous range of columns.
    pub fn contiguous(name: &str, data_type: DataType, range: std::ops::Range<usize>) -> Self {
        Self {
            name: name.to_string(),
            data_type,
            ranges: vec![range],
        }
    }

    /// Total number of columns in the partition.
    pub fn len(&self) -> usize {
        self.ranges.iter().map(|r| r.len()).sum()
    }

    /// Whether the partition covers no columns.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All column indices of the partition, ascending.
    pub fn columns(&self) -> Vec<usize> {
        let mut cols = Vec::with_capacity(self.len());
        for r in &self.ranges {
            cols.extend(r.clone());
        }
        cols
    }

    /// The largest referenced column index plus one (0 for empty partitions).
    pub fn max_column_exclusive(&self) -> usize {
        self.ranges.iter().map(|r| r.end).max().unwrap_or(0)
    }
}

/// An ordered collection of partitions covering an alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSet {
    partitions: Vec<Partition>,
}

impl PartitionSet {
    /// Creates a partition set from a list of partitions.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] if no partitions are given.
    pub fn new(partitions: Vec<Partition>) -> Result<Self, DataError> {
        if partitions.is_empty() {
            return Err(DataError::Empty("partition set".into()));
        }
        Ok(Self { partitions })
    }

    /// A single partition spanning `0..columns` — the *unpartitioned* analysis
    /// the paper uses as the scalability reference in Figure 6.
    pub fn unpartitioned(data_type: DataType, columns: usize) -> Self {
        Self {
            partitions: vec![Partition::contiguous("ALL", data_type, 0..columns)],
        }
    }

    /// Splits `0..columns` into consecutive chunks of `chunk_len` columns
    /// (the paper's `p1000`, `p5000`, `p10000` schemes). The final chunk may be
    /// shorter if `columns` is not a multiple of `chunk_len`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0` or `columns == 0`.
    pub fn equal_length(data_type: DataType, columns: usize, chunk_len: usize) -> Self {
        assert!(
            chunk_len > 0 && columns > 0,
            "invalid equal-length partitioning"
        );
        let mut partitions = Vec::new();
        let mut start = 0usize;
        let mut index = 0usize;
        while start < columns {
            let end = (start + chunk_len).min(columns);
            partitions.push(Partition::contiguous(
                &format!("p{index}"),
                data_type,
                start..end,
            ));
            start = end;
            index += 1;
        }
        Self { partitions }
    }

    /// Builds consecutive partitions with explicitly given lengths (used for
    /// the variable-length real-world-like datasets such as r125_19839).
    ///
    /// # Panics
    ///
    /// Panics if `lengths` is empty or contains a zero.
    pub fn from_lengths(data_type: DataType, lengths: &[usize]) -> Self {
        assert!(
            !lengths.is_empty(),
            "at least one partition length required"
        );
        let mut partitions = Vec::with_capacity(lengths.len());
        let mut start = 0usize;
        for (i, &len) in lengths.iter().enumerate() {
            assert!(len > 0, "partition lengths must be positive");
            partitions.push(Partition::contiguous(
                &format!("p{i}"),
                data_type,
                start..start + len,
            ));
            start += len;
        }
        Self { partitions }
    }

    /// The partitions in order.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether the set contains no partitions (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Total number of columns covered.
    pub fn total_columns(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Validates the set against an alignment of `alignment_columns` columns:
    /// no partition may reference columns outside of the alignment, no column
    /// may be claimed twice, and every column must be covered.
    ///
    /// # Errors
    ///
    /// [`DataError::PartitionOutOfBounds`], [`DataError::OverlappingPartitions`]
    /// or [`DataError::UncoveredColumns`] as appropriate.
    pub fn validate(&self, alignment_columns: usize) -> Result<(), DataError> {
        let mut claimed = vec![false; alignment_columns];
        for p in &self.partitions {
            if p.max_column_exclusive() > alignment_columns {
                return Err(DataError::PartitionOutOfBounds {
                    partition: p.name.clone(),
                    column: p.max_column_exclusive(),
                    alignment_length: alignment_columns,
                });
            }
            for c in p.columns() {
                if claimed[c] {
                    return Err(DataError::OverlappingPartitions { column: c + 1 });
                }
                claimed[c] = true;
            }
        }
        let uncovered = claimed.iter().filter(|&&x| !x).count();
        if uncovered > 0 {
            return Err(DataError::UncoveredColumns { count: uncovered });
        }
        Ok(())
    }

    /// Parses a RAxML-style partition file.
    ///
    /// Each non-empty line has the form `MODEL, name = range[, range...]`
    /// where a range is `a-b` (1-based, inclusive) or a single column `a`.
    /// The model token selects the data type: `DNA` → [`DataType::Dna`]; any
    /// of the common protein model names (`WAG`, `LG`, `JTT`, `PROT*`, `AA`) →
    /// [`DataType::Protein`].
    ///
    /// # Errors
    ///
    /// [`DataError::Parse`] describes malformed lines; [`DataError::Empty`] is
    /// returned if the file contains no partitions.
    pub fn parse(text: &str) -> Result<Self, DataError> {
        let mut partitions = Vec::new();
        for (lineno, raw_line) in text.lines().enumerate() {
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (model_part, rest) = line.split_once(',').ok_or_else(|| {
                DataError::Parse(format!(
                    "line {}: expected 'MODEL, name = ranges'",
                    lineno + 1
                ))
            })?;
            let data_type = parse_model_token(model_part.trim()).ok_or_else(|| {
                DataError::Parse(format!(
                    "line {}: unknown model token '{}'",
                    lineno + 1,
                    model_part.trim()
                ))
            })?;
            let (name_part, ranges_part) = rest.split_once('=').ok_or_else(|| {
                DataError::Parse(format!("line {}: missing '=' separator", lineno + 1))
            })?;
            let name = name_part.trim();
            if name.is_empty() {
                return Err(DataError::Parse(format!(
                    "line {}: empty partition name",
                    lineno + 1
                )));
            }
            let mut ranges = Vec::new();
            for token in ranges_part.split(',') {
                let token = token.trim();
                if token.is_empty() {
                    continue;
                }
                // Ignore RAxML codon-stride suffixes like "1-1000\3".
                let token = token.split('\\').next().unwrap_or(token).trim();
                let (a, b) = match token.split_once('-') {
                    Some((a, b)) => (a.trim(), b.trim()),
                    None => (token, token),
                };
                let start: usize = a.parse().map_err(|_| {
                    DataError::Parse(format!("line {}: bad range start '{a}'", lineno + 1))
                })?;
                let end: usize = b.parse().map_err(|_| {
                    DataError::Parse(format!("line {}: bad range end '{b}'", lineno + 1))
                })?;
                if start == 0 || end < start {
                    return Err(DataError::Parse(format!(
                        "line {}: invalid range {start}-{end} (1-based, ascending)",
                        lineno + 1
                    )));
                }
                ranges.push((start - 1)..end);
            }
            if ranges.is_empty() {
                return Err(DataError::Parse(format!(
                    "line {}: no column ranges",
                    lineno + 1
                )));
            }
            partitions.push(Partition {
                name: name.to_string(),
                data_type,
                ranges,
            });
        }
        PartitionSet::new(partitions)
    }

    /// Serializes the set back into the RAxML partition-file syntax.
    pub fn to_file_string(&self) -> String {
        let mut out = String::new();
        for p in &self.partitions {
            let model = match p.data_type {
                DataType::Dna => "DNA",
                DataType::Protein => "WAG",
            };
            let ranges: Vec<String> = p
                .ranges
                .iter()
                .map(|r| format!("{}-{}", r.start + 1, r.end))
                .collect();
            out.push_str(&format!("{model}, {} = {}\n", p.name, ranges.join(", ")));
        }
        out
    }
}

fn parse_model_token(token: &str) -> Option<DataType> {
    let t = token.to_ascii_uppercase();
    if t == "DNA" || t == "NUC" || t == "GTR" {
        Some(DataType::Dna)
    } else if t == "AA"
        || t == "PROT"
        || t.starts_with("PROT")
        || ["WAG", "LG", "JTT", "DAYHOFF", "BLOSUM62", "MTREV"].contains(&t.as_str())
    {
        Some(DataType::Protein)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_partition_basics() {
        let p = Partition::contiguous("g0", DataType::Dna, 0..1000);
        assert_eq!(p.len(), 1000);
        assert!(!p.is_empty());
        assert_eq!(p.max_column_exclusive(), 1000);
        assert_eq!(p.columns()[0], 0);
        assert_eq!(*p.columns().last().unwrap(), 999);
    }

    #[test]
    fn equal_length_partitioning() {
        let ps = PartitionSet::equal_length(DataType::Dna, 50_000, 1_000);
        assert_eq!(ps.len(), 50);
        assert_eq!(ps.total_columns(), 50_000);
        assert!(ps.validate(50_000).is_ok());

        // Non-divisible case: final partition is shorter.
        let ps = PartitionSet::equal_length(DataType::Dna, 5_500, 1_000);
        assert_eq!(ps.len(), 6);
        assert_eq!(ps.partitions()[5].len(), 500);
        assert!(ps.validate(5_500).is_ok());
    }

    #[test]
    fn from_lengths_matches_requested_sizes() {
        let lengths = [148usize, 2705, 300];
        let ps = PartitionSet::from_lengths(DataType::Dna, &lengths);
        assert_eq!(ps.len(), 3);
        for (p, &l) in ps.partitions().iter().zip(lengths.iter()) {
            assert_eq!(p.len(), l);
        }
        assert!(ps.validate(148 + 2705 + 300).is_ok());
    }

    #[test]
    fn unpartitioned_covers_everything() {
        let ps = PartitionSet::unpartitioned(DataType::Dna, 1234);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.total_columns(), 1234);
        assert!(ps.validate(1234).is_ok());
    }

    #[test]
    fn validate_detects_out_of_bounds() {
        let ps =
            PartitionSet::new(vec![Partition::contiguous("g", DataType::Dna, 0..100)]).unwrap();
        assert!(matches!(
            ps.validate(50),
            Err(DataError::PartitionOutOfBounds { .. })
        ));
    }

    #[test]
    fn validate_detects_overlap_and_gaps() {
        let overlapping = PartitionSet::new(vec![
            Partition::contiguous("a", DataType::Dna, 0..10),
            Partition::contiguous("b", DataType::Dna, 5..15),
        ])
        .unwrap();
        assert!(matches!(
            overlapping.validate(15),
            Err(DataError::OverlappingPartitions { .. })
        ));

        let gappy = PartitionSet::new(vec![
            Partition::contiguous("a", DataType::Dna, 0..10),
            Partition::contiguous("b", DataType::Dna, 12..15),
        ])
        .unwrap();
        assert!(matches!(
            gappy.validate(15),
            Err(DataError::UncoveredColumns { count: 2 })
        ));
    }

    #[test]
    fn parse_raxml_style_file() {
        let text = "\
# a comment
DNA, gene0 = 1-1000
DNA, gene1 = 1001-2000
WAG, prot1 = 2001-2500, 2601-2700
";
        let ps = PartitionSet::parse(text).unwrap();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.partitions()[0].ranges, vec![0..1000]);
        assert_eq!(ps.partitions()[1].ranges, vec![1000..2000]);
        assert_eq!(ps.partitions()[2].data_type, DataType::Protein);
        assert_eq!(ps.partitions()[2].ranges, vec![2000..2500, 2600..2700]);
    }

    #[test]
    fn parse_single_column_and_stride_suffix() {
        let ps = PartitionSet::parse("DNA, g = 5\nDNA, h = 10-20\\3\nDNA, rest = 1-4, 6-9, 21-30")
            .unwrap();
        assert_eq!(ps.partitions()[0].ranges, vec![4..5]);
        assert_eq!(ps.partitions()[1].ranges, vec![9..20]);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(PartitionSet::parse("DNA gene0 = 1-100").is_err());
        assert!(PartitionSet::parse("DNA, gene0 1-100").is_err());
        assert!(PartitionSet::parse("FOO, gene0 = 1-100").is_err());
        assert!(PartitionSet::parse("DNA, gene0 = 100-1").is_err());
        assert!(PartitionSet::parse("DNA, gene0 = 0-10").is_err());
        assert!(PartitionSet::parse("").is_err());
    }

    #[test]
    fn round_trip_through_file_format() {
        let ps = PartitionSet::equal_length(DataType::Dna, 3000, 1000);
        let text = ps.to_file_string();
        let reparsed = PartitionSet::parse(&text).unwrap();
        assert_eq!(reparsed.len(), ps.len());
        for (a, b) in reparsed.partitions().iter().zip(ps.partitions()) {
            assert_eq!(a.ranges, b.ranges);
            assert_eq!(a.data_type, b.data_type);
        }
    }
}
