//! Character-state alphabets for molecular sequence data.
//!
//! States are encoded as bitmasks so that ambiguity codes (and alignment gaps,
//! which are treated as completely missing data) fall out naturally: the
//! likelihood of a tip state is the sum over all states compatible with the
//! observed character, which is exactly what a bitmask lookup table gives the
//! kernel for free.
//!
//! * DNA uses 4 states (`A`, `C`, `G`, `T`) and the IUPAC ambiguity codes.
//! * Protein data uses the 20 standard amino acids plus `B`, `Z`, `J`, `X` and
//!   gap characters.

/// An encoded character state: a bitmask over the alphabet's base states.
///
/// Bit `i` is set iff the observed character is compatible with base state `i`.
/// A gap or completely unknown character has all bits set.
pub type EncodedState = u32;

/// The two molecular data types supported by the kernel.
///
/// The paper's evaluation uses DNA datasets (4 states) and protein datasets
/// (20 states); the roughly `(20/4)² = 25×` higher per-column cost of protein
/// data is what makes the load-balance problem less severe there (Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Nucleotide data: 4 states.
    Dna,
    /// Amino-acid data: 20 states.
    Protein,
}

/// Characters of the 20 standard amino acids in the conventional order
/// (alphabetical by one-letter code) used to index protein models.
pub const AMINO_ACIDS: [char; 20] = [
    'A', 'R', 'N', 'D', 'C', 'Q', 'E', 'G', 'H', 'I', 'L', 'K', 'M', 'F', 'P', 'S', 'T', 'W', 'Y',
    'V',
];

/// Nucleotide characters in kernel order.
pub const NUCLEOTIDES: [char; 4] = ['A', 'C', 'G', 'T'];

impl DataType {
    /// Number of base states of this data type (4 or 20).
    pub const fn states(&self) -> usize {
        match self {
            DataType::Dna => 4,
            DataType::Protein => 20,
        }
    }

    /// Bitmask representing a completely unknown character (gap, `?`, `N`/`X`).
    pub const fn gap_state(&self) -> EncodedState {
        match self {
            DataType::Dna => 0b1111,
            DataType::Protein => 0x000F_FFFF,
        }
    }

    /// Encodes a single character, returning `None` for characters that are
    /// not valid in this alphabet.
    ///
    /// Lower-case characters are accepted. `-`, `.`, `?` and the
    /// "fully ambiguous" codes (`N`/`O` for DNA, `X` for protein) all encode to
    /// the gap state.
    pub fn encode(&self, c: char) -> Option<EncodedState> {
        let c = c.to_ascii_uppercase();
        match self {
            DataType::Dna => encode_dna(c),
            DataType::Protein => encode_protein(c),
        }
    }

    /// Decodes a bitmask back into a representative character. Unambiguous
    /// states map to their character, the full gap state maps to `-`, and any
    /// other ambiguity maps to the conventional IUPAC code for DNA or `X` for
    /// protein data.
    pub fn decode(&self, state: EncodedState) -> char {
        match self {
            DataType::Dna => decode_dna(state),
            DataType::Protein => decode_protein(state),
        }
    }

    /// Returns `true` if the bitmask corresponds to exactly one base state.
    pub fn is_unambiguous(&self, state: EncodedState) -> bool {
        state.count_ones() == 1 && (state & self.gap_state()) == state
    }

    /// Returns `true` if the bitmask is the completely-missing (gap) state.
    pub fn is_gap(&self, state: EncodedState) -> bool {
        state == self.gap_state()
    }

    /// Index of an unambiguous state (0-based), or `None` if ambiguous.
    pub fn state_index(&self, state: EncodedState) -> Option<usize> {
        if self.is_unambiguous(state) {
            Some(state.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// Bitmask for the base state with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.states()`.
    pub fn state_mask(&self, index: usize) -> EncodedState {
        assert!(index < self.states(), "state index {index} out of range");
        1 << index
    }

    /// The character for the base state with the given index.
    pub fn state_char(&self, index: usize) -> char {
        assert!(index < self.states(), "state index {index} out of range");
        match self {
            DataType::Dna => NUCLEOTIDES[index],
            DataType::Protein => AMINO_ACIDS[index],
        }
    }
}

fn encode_dna(c: char) -> Option<EncodedState> {
    // Bit order: A=1, C=2, G=4, T=8.
    let m = match c {
        'A' => 0b0001,
        'C' => 0b0010,
        'G' => 0b0100,
        'T' | 'U' => 0b1000,
        'R' => 0b0101, // A or G
        'Y' => 0b1010, // C or T
        'S' => 0b0110, // G or C
        'W' => 0b1001, // A or T
        'K' => 0b1100, // G or T
        'M' => 0b0011, // A or C
        'B' => 0b1110, // C, G or T
        'D' => 0b1101, // A, G or T
        'H' => 0b1011, // A, C or T
        'V' => 0b0111, // A, C or G
        'N' | 'O' | 'X' | '-' | '?' | '.' => 0b1111,
        _ => return None,
    };
    Some(m)
}

fn decode_dna(state: EncodedState) -> char {
    match state & 0b1111 {
        0b0001 => 'A',
        0b0010 => 'C',
        0b0100 => 'G',
        0b1000 => 'T',
        0b0101 => 'R',
        0b1010 => 'Y',
        0b0110 => 'S',
        0b1001 => 'W',
        0b1100 => 'K',
        0b0011 => 'M',
        0b1110 => 'B',
        0b1101 => 'D',
        0b1011 => 'H',
        0b0111 => 'V',
        0b1111 => '-',
        _ => '?',
    }
}

fn amino_index(c: char) -> Option<usize> {
    AMINO_ACIDS.iter().position(|&a| a == c)
}

fn encode_protein(c: char) -> Option<EncodedState> {
    if let Some(i) = amino_index(c) {
        return Some(1 << i);
    }
    let n = |ch: char| 1u32 << amino_index(ch).expect("standard amino acid");
    let m = match c {
        'B' => n('N') | n('D'),
        'Z' => n('Q') | n('E'),
        'J' => n('I') | n('L'),
        'U' => n('C'), // selenocysteine treated as cysteine
        'X' | '-' | '?' | '.' | '*' => DataType::Protein.gap_state(),
        _ => return None,
    };
    Some(m)
}

fn decode_protein(state: EncodedState) -> char {
    let masked = state & DataType::Protein.gap_state();
    if masked == DataType::Protein.gap_state() {
        return '-';
    }
    if masked.count_ones() == 1 {
        return AMINO_ACIDS[masked.trailing_zeros() as usize];
    }
    'X'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_round_trip_unambiguous() {
        for (i, &c) in NUCLEOTIDES.iter().enumerate() {
            let e = DataType::Dna.encode(c).unwrap();
            assert!(DataType::Dna.is_unambiguous(e));
            assert_eq!(DataType::Dna.state_index(e), Some(i));
            assert_eq!(DataType::Dna.decode(e), c);
        }
    }

    #[test]
    fn dna_lowercase_and_uracil() {
        assert_eq!(DataType::Dna.encode('a'), DataType::Dna.encode('A'));
        assert_eq!(DataType::Dna.encode('u'), DataType::Dna.encode('T'));
    }

    #[test]
    fn dna_ambiguity_codes() {
        let dt = DataType::Dna;
        assert_eq!(
            dt.encode('R').unwrap(),
            dt.encode('A').unwrap() | dt.encode('G').unwrap()
        );
        assert_eq!(
            dt.encode('Y').unwrap(),
            dt.encode('C').unwrap() | dt.encode('T').unwrap()
        );
        assert_eq!(dt.encode('N').unwrap(), dt.gap_state());
        assert_eq!(dt.encode('-').unwrap(), dt.gap_state());
        assert!(dt.is_gap(dt.encode('?').unwrap()));
    }

    #[test]
    fn dna_rejects_garbage() {
        assert_eq!(DataType::Dna.encode('!'), None);
        assert_eq!(DataType::Dna.encode('1'), None);
    }

    #[test]
    fn dna_decode_ambiguity_round_trip() {
        let dt = DataType::Dna;
        for c in ['R', 'Y', 'S', 'W', 'K', 'M', 'B', 'D', 'H', 'V'] {
            let e = dt.encode(c).unwrap();
            assert_eq!(dt.decode(e), c, "round trip of {c}");
            assert!(!dt.is_unambiguous(e));
            assert!(!dt.is_gap(e));
        }
    }

    #[test]
    fn protein_round_trip_unambiguous() {
        for (i, &c) in AMINO_ACIDS.iter().enumerate() {
            let e = DataType::Protein.encode(c).unwrap();
            assert!(DataType::Protein.is_unambiguous(e));
            assert_eq!(DataType::Protein.state_index(e), Some(i));
            assert_eq!(DataType::Protein.decode(e), c);
            assert_eq!(DataType::Protein.state_mask(i), e);
            assert_eq!(DataType::Protein.state_char(i), c);
        }
    }

    #[test]
    fn protein_ambiguity_codes() {
        let dt = DataType::Protein;
        let b = dt.encode('B').unwrap();
        assert_eq!(b.count_ones(), 2);
        assert_eq!(dt.decode(b), 'X');
        assert!(dt.is_gap(dt.encode('X').unwrap()));
        assert!(dt.is_gap(dt.encode('-').unwrap()));
        assert_eq!(dt.encode('u'), dt.encode('C'));
    }

    #[test]
    fn protein_rejects_garbage() {
        assert_eq!(DataType::Protein.encode('8'), None);
        assert_eq!(DataType::Protein.encode('@'), None);
    }

    #[test]
    fn states_and_gap_masks() {
        assert_eq!(DataType::Dna.states(), 4);
        assert_eq!(DataType::Protein.states(), 20);
        assert_eq!(DataType::Dna.gap_state().count_ones(), 4);
        assert_eq!(DataType::Protein.gap_state().count_ones(), 20);
    }

    #[test]
    #[should_panic]
    fn state_mask_out_of_range_panics() {
        DataType::Dna.state_mask(4);
    }
}
