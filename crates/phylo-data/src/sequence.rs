//! A named, encoded molecular sequence.

use crate::alphabet::{DataType, EncodedState};
use crate::error::DataError;

/// A single aligned sequence: a taxon name plus its encoded character states.
///
/// The characters are stored in their bitmask encoding (see
/// [`crate::alphabet`]), which is what the likelihood kernel consumes directly
/// as tip states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sequence {
    /// Taxon name.
    pub name: String,
    /// Data type the characters were encoded under.
    pub data_type: DataType,
    /// Encoded character states, one per alignment column.
    pub states: Vec<EncodedState>,
}

impl Sequence {
    /// Encodes a raw character string under `data_type`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidCharacter`] if a character is not valid for
    /// the data type. Whitespace characters are skipped silently so that
    /// interleaved/wrapped file formats are easy to handle upstream.
    pub fn from_str(name: &str, data_type: DataType, raw: &str) -> Result<Self, DataError> {
        let mut states = Vec::with_capacity(raw.len());
        for (column, c) in raw.chars().filter(|c| !c.is_whitespace()).enumerate() {
            match data_type.encode(c) {
                Some(s) => states.push(s),
                None => {
                    return Err(DataError::InvalidCharacter {
                        character: c,
                        sequence: name.to_string(),
                        column,
                    })
                }
            }
        }
        Ok(Self {
            name: name.to_string(),
            data_type,
            states,
        })
    }

    /// Builds a sequence directly from already encoded states.
    pub fn from_states(name: &str, data_type: DataType, states: Vec<EncodedState>) -> Self {
        Self {
            name: name.to_string(),
            data_type,
            states,
        }
    }

    /// Number of alignment columns.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the sequence has no columns.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Decodes back into a character string (ambiguities are canonicalized).
    pub fn to_characters(&self) -> String {
        self.states
            .iter()
            .map(|&s| self.data_type.decode(s))
            .collect()
    }

    /// Fraction of columns that are completely missing (gap state).
    pub fn gap_fraction(&self) -> f64 {
        if self.states.is_empty() {
            return 0.0;
        }
        let gaps = self
            .states
            .iter()
            .filter(|&&s| self.data_type.is_gap(s))
            .count();
        gaps as f64 / self.states.len() as f64
    }

    /// Returns `true` if every column in `range` is a gap, i.e. the taxon has
    /// no data in that region (a "data hole" in a gappy phylogenomic
    /// alignment).
    pub fn is_missing_in(&self, range: std::ops::Range<usize>) -> bool {
        self.states[range].iter().all(|&s| self.data_type.is_gap(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_and_decode_dna() {
        let s = Sequence::from_str("t1", DataType::Dna, "ACGT-N").unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.to_characters(), "ACGT--");
        assert_eq!(s.gap_fraction(), 2.0 / 6.0);
    }

    #[test]
    fn whitespace_is_skipped() {
        let s = Sequence::from_str("t1", DataType::Dna, "AC GT\nAC").unwrap();
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn invalid_character_is_reported_with_position() {
        let err = Sequence::from_str("taxonZ", DataType::Dna, "ACZT").unwrap_err();
        match err {
            DataError::InvalidCharacter {
                character,
                sequence,
                column,
            } => {
                assert_eq!(character, 'Z');
                assert_eq!(sequence, "taxonZ");
                assert_eq!(column, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn protein_sequence() {
        let s = Sequence::from_str("p1", DataType::Protein, "ARNDX-").unwrap();
        assert_eq!(s.len(), 6);
        assert!(s.data_type.is_gap(s.states[4]));
        assert!(s.data_type.is_gap(s.states[5]));
    }

    #[test]
    fn missing_region_detection() {
        let s = Sequence::from_str("t1", DataType::Dna, "AC----GT").unwrap();
        assert!(s.is_missing_in(2..6));
        assert!(!s.is_missing_in(0..4));
    }

    #[test]
    fn empty_sequence() {
        let s = Sequence::from_str("t", DataType::Dna, "").unwrap();
        assert!(s.is_empty());
        assert_eq!(s.gap_fraction(), 0.0);
    }
}
