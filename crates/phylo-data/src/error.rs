//! Error type shared by the data-handling modules.

use std::fmt;

/// Errors produced while reading, encoding or partitioning alignment data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A character in a sequence is not valid for the declared data type.
    InvalidCharacter {
        /// The offending character.
        character: char,
        /// Name of the sequence it occurred in.
        sequence: String,
        /// Zero-based column index.
        column: usize,
    },
    /// Sequences in an alignment do not all have the same length.
    UnequalSequenceLengths {
        /// Expected length (from the first sequence).
        expected: usize,
        /// Observed length.
        found: usize,
        /// Name of the offending sequence.
        sequence: String,
    },
    /// Two sequences share the same taxon name.
    DuplicateTaxon(String),
    /// A partition refers to columns outside of the alignment.
    PartitionOutOfBounds {
        /// Partition name.
        partition: String,
        /// Largest referenced column (one-based, as written in partition files).
        column: usize,
        /// Number of columns in the alignment.
        alignment_length: usize,
    },
    /// Two partitions claim the same alignment column.
    OverlappingPartitions {
        /// One-based column index claimed twice.
        column: usize,
    },
    /// Some alignment columns are not covered by any partition.
    UncoveredColumns {
        /// Number of uncovered columns.
        count: usize,
    },
    /// A file could not be parsed; the string describes the problem.
    Parse(String),
    /// An alignment or partition set is structurally empty.
    Empty(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidCharacter { character, sequence, column } => write!(
                f,
                "invalid character '{character}' in sequence '{sequence}' at column {column}"
            ),
            DataError::UnequalSequenceLengths { expected, found, sequence } => write!(
                f,
                "sequence '{sequence}' has length {found}, expected {expected}"
            ),
            DataError::DuplicateTaxon(name) => write!(f, "duplicate taxon name '{name}'"),
            DataError::PartitionOutOfBounds { partition, column, alignment_length } => write!(
                f,
                "partition '{partition}' references column {column} but the alignment has only {alignment_length} columns"
            ),
            DataError::OverlappingPartitions { column } => {
                write!(f, "column {column} is claimed by more than one partition")
            }
            DataError::UncoveredColumns { count } => {
                write!(f, "{count} alignment columns are not covered by any partition")
            }
            DataError::Parse(msg) => write!(f, "parse error: {msg}"),
            DataError::Empty(what) => write!(f, "empty {what}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::InvalidCharacter {
            character: '!',
            sequence: "taxon1".into(),
            column: 7,
        };
        assert!(e.to_string().contains('!'));
        assert!(e.to_string().contains("taxon1"));

        let e = DataError::UnequalSequenceLengths {
            expected: 10,
            found: 8,
            sequence: "t2".into(),
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('8'));

        let e = DataError::PartitionOutOfBounds {
            partition: "gene3".into(),
            column: 1200,
            alignment_length: 1000,
        };
        assert!(e.to_string().contains("gene3"));
        assert!(e.to_string().contains("1200"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(DataError::DuplicateTaxon("x".into()));
    }
}
