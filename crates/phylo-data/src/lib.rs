//! Alignment substrate for the phylogenetic likelihood kernel reproduction.
//!
//! This crate owns everything about the *input data* of a phylogenomic
//! analysis:
//!
//! * [`alphabet`] — DNA and amino-acid state encodings with full ambiguity
//!   code support (states are bitmasks so that partially observed characters
//!   behave correctly in the likelihood kernel),
//! * [`sequence`] — a named, encoded molecular sequence,
//! * [`alignment`] — a multiple sequence alignment of `n` taxa × `m` columns,
//!   possibly mixing DNA and protein partitions,
//! * [`partition`] — partition definitions (gene boundaries, per-partition
//!   data types) and the RAxML-style partition-file syntax,
//! * [`patterns`] — site-pattern compression: the kernel operates on the `m′`
//!   *distinct* columns of each partition, weighted by multiplicity,
//! * [`io`] — FASTA and relaxed-PHYLIP readers/writers.
//!
//! The central output type is [`patterns::PartitionedPatterns`], the compiled,
//! pattern-compressed, partitioned view of an alignment that the kernel and
//! the parallel runtime consume.
//!
//! ```
//! use phylo_data::{Alignment, DataType, PartitionSet, PartitionedPatterns};
//!
//! let alignment = Alignment::new(vec![
//!     ("t1".into(), "ACGTACGT".into()),
//!     ("t2".into(), "ACGAACGA".into()),
//!     ("t3".into(), "ACCTACGA".into()),
//! ]).unwrap();
//! let partitions = PartitionSet::equal_length(DataType::Dna, 8, 4);
//! let patterns = PartitionedPatterns::compile(&alignment, &partitions).unwrap();
//! assert_eq!(patterns.partition_count(), 2);
//! // Identical columns collapse, so there are at most 8 distinct patterns.
//! assert!(patterns.total_patterns() <= 8);
//! assert_eq!(patterns.total_sites(), 8);
//! ```

#![forbid(unsafe_code)]

pub mod alignment;
pub mod alphabet;
pub mod error;
pub mod io;
pub mod partition;
pub mod patterns;
pub mod sequence;

pub use alignment::Alignment;
pub use alphabet::{DataType, EncodedState};
pub use error::DataError;
pub use partition::{Partition, PartitionSet};
pub use patterns::{CompressedPartition, PartitionedPatterns};
pub use sequence::Sequence;
