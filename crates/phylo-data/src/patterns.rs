//! Site-pattern compression and the compiled, partitioned view of an
//! alignment.
//!
//! The likelihood of an alignment column depends only on the column's
//! character pattern, so identical columns are collapsed into a single
//! *pattern* with an integer weight. Everything downstream — the kernel, the
//! parallel runtime, the optimizers — operates on [`PartitionedPatterns`]: the
//! list of per-partition compressed pattern blocks laid out in one global
//! pattern index space `0..m′`. That global index space is what gets
//! distributed cyclically over threads.

use std::collections::HashMap;

use crate::alignment::Alignment;
use crate::alphabet::{DataType, EncodedState};
use crate::error::DataError;
use crate::partition::PartitionSet;

/// One partition after pattern compression.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedPartition {
    /// Partition (gene) name.
    pub name: String,
    /// Data type of the partition.
    pub data_type: DataType,
    /// Number of taxa (rows); identical across partitions of one dataset.
    pub n_taxa: usize,
    /// Tip states, pattern-major: the state of taxon `t` in pattern `p` is
    /// `tip_states[p * n_taxa + t]`.
    pub tip_states: Vec<EncodedState>,
    /// Multiplicity of each pattern (how many alignment columns collapse onto it).
    pub weights: Vec<f64>,
    /// For each original column of the partition (in partition-local order),
    /// the index of the pattern it collapsed onto.
    pub site_to_pattern: Vec<usize>,
}

impl CompressedPartition {
    /// Number of distinct patterns `m′` in this partition.
    pub fn pattern_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of original alignment columns in this partition.
    pub fn site_count(&self) -> usize {
        self.site_to_pattern.len()
    }

    /// Sum of pattern weights (equals [`Self::site_count`]).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Tip state of `taxon` in `pattern`.
    #[inline]
    pub fn tip_state(&self, pattern: usize, taxon: usize) -> EncodedState {
        self.tip_states[pattern * self.n_taxa + taxon]
    }

    /// All tip states of one pattern (length `n_taxa`).
    #[inline]
    pub fn pattern_states(&self, pattern: usize) -> &[EncodedState] {
        &self.tip_states[pattern * self.n_taxa..(pattern + 1) * self.n_taxa]
    }

    /// Number of states of the partition's data type (4 or 20).
    pub fn states(&self) -> usize {
        self.data_type.states()
    }

    /// Builds a compressed partition from per-column encoded states.
    ///
    /// `columns[c]` holds the encoded states of all taxa for the c-th column of
    /// the partition.
    pub fn from_columns(
        name: &str,
        data_type: DataType,
        n_taxa: usize,
        columns: &[Vec<EncodedState>],
    ) -> Self {
        let mut index: HashMap<&[EncodedState], usize> = HashMap::with_capacity(columns.len());
        let mut tip_states: Vec<EncodedState> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let mut site_to_pattern = Vec::with_capacity(columns.len());

        for col in columns {
            debug_assert_eq!(col.len(), n_taxa);
            if let Some(&p) = index.get(col.as_slice()) {
                weights[p] += 1.0;
                site_to_pattern.push(p);
            } else {
                let p = weights.len();
                tip_states.extend_from_slice(col);
                weights.push(1.0);
                site_to_pattern.push(p);
                // Safety of the borrow: we only read from `columns`, which
                // outlives the map; keying on the input slice avoids an extra
                // allocation per distinct pattern.
                index.insert(col.as_slice(), p);
            }
        }

        Self {
            name: name.to_string(),
            data_type,
            n_taxa,
            tip_states,
            weights,
            site_to_pattern,
        }
    }
}

/// The compiled, pattern-compressed, partitioned view of an alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedPatterns {
    /// Taxon names, shared by all partitions (row order of the alignment).
    pub taxa: Vec<String>,
    /// The compressed partitions in their original order.
    pub partitions: Vec<CompressedPartition>,
    /// Start of each partition in the global pattern index space.
    offsets: Vec<usize>,
    total_patterns: usize,
}

impl PartitionedPatterns {
    /// Compiles an alignment and a partition set into the kernel's input form.
    ///
    /// # Errors
    ///
    /// Any validation error from [`PartitionSet::validate`] plus
    /// [`DataError::InvalidCharacter`] if a column cannot be encoded under its
    /// partition's data type.
    pub fn compile(alignment: &Alignment, partitions: &PartitionSet) -> Result<Self, DataError> {
        partitions.validate(alignment.columns())?;
        let n_taxa = alignment.taxa_count();

        let mut compressed = Vec::with_capacity(partitions.len());
        for part in partitions.partitions() {
            let cols = part.columns();
            // Encode column-major: for each column, the states of all taxa.
            let mut encoded_columns: Vec<Vec<EncodedState>> =
                vec![Vec::with_capacity(n_taxa); cols.len()];
            for taxon in 0..n_taxa {
                let row = alignment.encode_columns(taxon, &cols, part.data_type)?;
                for (ci, state) in row.into_iter().enumerate() {
                    encoded_columns[ci].push(state);
                }
            }
            compressed.push(CompressedPartition::from_columns(
                &part.name,
                part.data_type,
                n_taxa,
                &encoded_columns,
            ));
        }

        Ok(Self::from_parts(alignment.taxa().to_vec(), compressed))
    }

    /// Assembles a partitioned pattern set from already compressed partitions.
    ///
    /// # Panics
    ///
    /// Panics if the partitions disagree on the number of taxa or the list is
    /// empty.
    pub fn from_parts(taxa: Vec<String>, partitions: Vec<CompressedPartition>) -> Self {
        assert!(!partitions.is_empty(), "at least one partition required");
        let n_taxa = taxa.len();
        for p in &partitions {
            assert_eq!(
                p.n_taxa, n_taxa,
                "partition {:?} has inconsistent taxon count",
                p.name
            );
        }
        let mut offsets = Vec::with_capacity(partitions.len());
        let mut total = 0usize;
        for p in &partitions {
            offsets.push(total);
            total += p.pattern_count();
        }
        Self {
            taxa,
            partitions,
            offsets,
            total_patterns: total,
        }
    }

    /// Number of taxa.
    pub fn taxa_count(&self) -> usize {
        self.taxa.len()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of distinct patterns across all partitions (`m′`).
    pub fn total_patterns(&self) -> usize {
        self.total_patterns
    }

    /// Total number of original alignment columns across all partitions.
    pub fn total_sites(&self) -> usize {
        self.partitions.iter().map(|p| p.site_count()).sum()
    }

    /// Start of partition `i` in the global pattern index space.
    pub fn global_offset(&self, partition: usize) -> usize {
        self.offsets[partition]
    }

    /// Global pattern index range of partition `i`.
    pub fn global_range(&self, partition: usize) -> std::ops::Range<usize> {
        let start = self.offsets[partition];
        start..start + self.partitions[partition].pattern_count()
    }

    /// Maps a global pattern index back to `(partition, local pattern index)`.
    pub fn locate(&self, global_pattern: usize) -> (usize, usize) {
        assert!(
            global_pattern < self.total_patterns,
            "global pattern index out of range"
        );
        // Partitions are few (tens); a linear scan is fine and branch-predictable.
        let mut part = 0;
        for (i, &off) in self.offsets.iter().enumerate() {
            if global_pattern >= off {
                part = i;
            } else {
                break;
            }
        }
        (part, global_pattern - self.offsets[part])
    }

    /// Smallest and largest per-partition pattern counts; the paper reports
    /// these for its real-world datasets (e.g. 148 and 2,705 for r125_19839).
    pub fn min_max_partition_patterns(&self) -> (usize, usize) {
        let mut min = usize::MAX;
        let mut max = 0;
        for p in &self.partitions {
            min = min.min(p.pattern_count());
            max = max.max(p.pattern_count());
        }
        (min, max)
    }

    /// Collapses all partitions into a single unpartitioned pattern set with
    /// the same global pattern order (used for the unpartitioned reference
    /// runs in Figure 6). All partitions must share one data type.
    ///
    /// # Panics
    ///
    /// Panics if the partitions mix data types.
    pub fn merge_unpartitioned(&self) -> Self {
        let data_type = self.partitions[0].data_type;
        assert!(
            self.partitions.iter().all(|p| p.data_type == data_type),
            "cannot merge partitions of mixed data types"
        );
        let n_taxa = self.taxa.len();
        let mut tip_states = Vec::with_capacity(self.total_patterns * n_taxa);
        let mut weights = Vec::with_capacity(self.total_patterns);
        let mut site_to_pattern = Vec::new();
        let mut pattern_base = 0usize;
        for p in &self.partitions {
            tip_states.extend_from_slice(&p.tip_states);
            weights.extend_from_slice(&p.weights);
            site_to_pattern.extend(p.site_to_pattern.iter().map(|&s| s + pattern_base));
            pattern_base += p.pattern_count();
        }
        let merged = CompressedPartition {
            name: "ALL".to_string(),
            data_type,
            n_taxa,
            tip_states,
            weights,
            site_to_pattern,
        };
        Self::from_parts(self.taxa.clone(), vec![merged])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{Partition, PartitionSet};

    fn toy_alignment() -> Alignment {
        Alignment::new(vec![
            ("t1".into(), "AACCGGTTAA".into()),
            ("t2".into(), "AACCGGTTAC".into()),
            ("t3".into(), "AAGCGGTAAC".into()),
        ])
        .unwrap()
    }

    #[test]
    fn compression_collapses_identical_columns() {
        let aln = toy_alignment();
        let ps = PartitionSet::unpartitioned(DataType::Dna, 10);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        assert_eq!(pp.partition_count(), 1);
        let p = &pp.partitions[0];
        // Columns: AAA AAA CCG CCC GGG GGG TTT TTA AAA ACC
        // Distinct: AAA, CCG, CCC, GGG, TTT, TTA, ACC → 7 patterns.
        assert_eq!(p.pattern_count(), 7);
        assert_eq!(p.site_count(), 10);
        assert!((p.total_weight() - 10.0).abs() < 1e-12);
        // The first pattern (AAA) appears in columns 0, 1 and 8.
        assert_eq!(p.weights[0], 3.0);
        assert_eq!(p.site_to_pattern[0], p.site_to_pattern[1]);
        assert_eq!(p.site_to_pattern[0], p.site_to_pattern[8]);
    }

    #[test]
    fn partitioned_compilation_keeps_partitions_separate() {
        let aln = toy_alignment();
        let ps = PartitionSet::new(vec![
            Partition::contiguous("g0", DataType::Dna, 0..5),
            Partition::contiguous("g1", DataType::Dna, 5..10),
        ])
        .unwrap();
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        assert_eq!(pp.partition_count(), 2);
        assert_eq!(pp.total_sites(), 10);
        assert_eq!(pp.global_offset(0), 0);
        assert_eq!(pp.global_offset(1), pp.partitions[0].pattern_count());
        let total = pp.partitions[0].pattern_count() + pp.partitions[1].pattern_count();
        assert_eq!(pp.total_patterns(), total);
    }

    #[test]
    fn locate_round_trips() {
        let aln = toy_alignment();
        let ps = PartitionSet::new(vec![
            Partition::contiguous("g0", DataType::Dna, 0..5),
            Partition::contiguous("g1", DataType::Dna, 5..10),
        ])
        .unwrap();
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        for g in 0..pp.total_patterns() {
            let (part, local) = pp.locate(g);
            assert_eq!(pp.global_offset(part) + local, g);
            assert!(local < pp.partitions[part].pattern_count());
        }
    }

    #[test]
    fn tip_states_match_alignment() {
        let aln = toy_alignment();
        let ps = PartitionSet::unpartitioned(DataType::Dna, 10);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let p = &pp.partitions[0];
        // Column 2 is "CCG": taxon 2 has G.
        let pat = p.site_to_pattern[2];
        assert_eq!(p.tip_state(pat, 0), DataType::Dna.encode('C').unwrap());
        assert_eq!(p.tip_state(pat, 2), DataType::Dna.encode('G').unwrap());
        assert_eq!(p.pattern_states(pat).len(), 3);
    }

    #[test]
    fn merge_unpartitioned_preserves_total_weight() {
        let aln = toy_alignment();
        let ps = PartitionSet::equal_length(DataType::Dna, 10, 3);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let merged = pp.merge_unpartitioned();
        assert_eq!(merged.partition_count(), 1);
        assert_eq!(merged.total_sites(), pp.total_sites());
        assert!((merged.partitions[0].total_weight() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_partition_patterns() {
        let aln = toy_alignment();
        let ps = PartitionSet::new(vec![
            Partition::contiguous("small", DataType::Dna, 0..2),
            Partition::contiguous("large", DataType::Dna, 2..10),
        ])
        .unwrap();
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let (min, max) = pp.min_max_partition_patterns();
        assert!(min <= max);
        assert_eq!(min, pp.partitions[0].pattern_count());
        assert_eq!(max, pp.partitions[1].pattern_count());
    }

    #[test]
    fn compile_validates_partitions() {
        let aln = toy_alignment();
        let ps = PartitionSet::new(vec![Partition::contiguous("g", DataType::Dna, 0..20)]).unwrap();
        assert!(PartitionedPatterns::compile(&aln, &ps).is_err());
    }

    #[test]
    fn gap_only_taxon_in_partition_is_encoded_as_gap() {
        let aln = Alignment::new(vec![
            ("t1".into(), "ACGT----".into()),
            ("t2".into(), "ACGTACGT".into()),
            ("t3".into(), "ACCTACGA".into()),
        ])
        .unwrap();
        let ps = PartitionSet::equal_length(DataType::Dna, 8, 4);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let second = &pp.partitions[1];
        for p in 0..second.pattern_count() {
            assert!(second.data_type.is_gap(second.tip_state(p, 0)));
        }
    }
}
