//! Multiple sequence alignments.
//!
//! An [`Alignment`] stores the raw (ASCII) character matrix of `n` taxa by `m`
//! columns. Encoding into likelihood states happens later, per partition,
//! because a phylogenomic alignment may concatenate partitions of different
//! data types (the kernel's cyclic column distribution exists precisely to
//! balance mixed DNA/protein inputs).

use crate::alphabet::DataType;
use crate::error::DataError;
use crate::sequence::Sequence;

/// A multiple sequence alignment: a rectangular character matrix with named
/// rows (taxa).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    taxa: Vec<String>,
    /// Row-major character matrix; `rows[i]` has length `columns`.
    rows: Vec<Vec<u8>>,
    columns: usize,
}

impl Alignment {
    /// Builds an alignment from `(name, characters)` pairs.
    ///
    /// # Errors
    ///
    /// * [`DataError::Empty`] if no sequences are given,
    /// * [`DataError::DuplicateTaxon`] if two rows share a name,
    /// * [`DataError::UnequalSequenceLengths`] if the rows have differing
    ///   lengths.
    pub fn new(rows: Vec<(String, String)>) -> Result<Self, DataError> {
        if rows.is_empty() {
            return Err(DataError::Empty("alignment".into()));
        }
        let columns = rows[0].1.chars().filter(|c| !c.is_whitespace()).count();
        let mut taxa = Vec::with_capacity(rows.len());
        let mut data = Vec::with_capacity(rows.len());
        for (name, seq) in rows {
            if taxa.contains(&name) {
                return Err(DataError::DuplicateTaxon(name));
            }
            let bytes: Vec<u8> = seq
                .chars()
                .filter(|c| !c.is_whitespace())
                .map(|c| c as u8)
                .collect();
            if bytes.len() != columns {
                return Err(DataError::UnequalSequenceLengths {
                    expected: columns,
                    found: bytes.len(),
                    sequence: name,
                });
            }
            taxa.push(name);
            data.push(bytes);
        }
        Ok(Self {
            taxa,
            rows: data,
            columns,
        })
    }

    /// Builds an alignment directly from raw byte rows (used by the sequence
    /// simulator, which produces characters programmatically).
    ///
    /// # Errors
    ///
    /// Same validation as [`Alignment::new`].
    pub fn from_bytes(rows: Vec<(String, Vec<u8>)>) -> Result<Self, DataError> {
        let converted = rows
            .into_iter()
            .map(|(n, b)| (n, String::from_utf8_lossy(&b).into_owned()))
            .collect();
        Self::new(converted)
    }

    /// Number of taxa (rows).
    pub fn taxa_count(&self) -> usize {
        self.taxa.len()
    }

    /// Number of alignment columns.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Taxon names in row order.
    pub fn taxa(&self) -> &[String] {
        &self.taxa
    }

    /// Index of the taxon with the given name.
    pub fn taxon_index(&self, name: &str) -> Option<usize> {
        self.taxa.iter().position(|t| t == name)
    }

    /// The raw character (ASCII byte) at row `taxon`, column `column`.
    pub fn char_at(&self, taxon: usize, column: usize) -> u8 {
        self.rows[taxon][column]
    }

    /// The raw character row for a taxon.
    pub fn row(&self, taxon: usize) -> &[u8] {
        &self.rows[taxon]
    }

    /// Encodes one taxon's characters in `columns` under the given data type.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidCharacter`] for characters invalid under
    /// `data_type`.
    pub fn encode_columns(
        &self,
        taxon: usize,
        columns: &[usize],
        data_type: DataType,
    ) -> Result<Vec<u32>, DataError> {
        let mut out = Vec::with_capacity(columns.len());
        for &c in columns {
            let ch = self.rows[taxon][c] as char;
            match data_type.encode(ch) {
                Some(s) => out.push(s),
                None => {
                    return Err(DataError::InvalidCharacter {
                        character: ch,
                        sequence: self.taxa[taxon].clone(),
                        column: c,
                    })
                }
            }
        }
        Ok(out)
    }

    /// Encodes an entire row under a single data type, returning a
    /// [`Sequence`].
    pub fn encode_row(&self, taxon: usize, data_type: DataType) -> Result<Sequence, DataError> {
        let cols: Vec<usize> = (0..self.columns).collect();
        let states = self.encode_columns(taxon, &cols, data_type)?;
        Ok(Sequence::from_states(&self.taxa[taxon], data_type, states))
    }

    /// Returns true if every column of the alignment is distinct, i.e. the
    /// number of site patterns equals the number of columns (the paper's
    /// simulated datasets are constructed to have this property, `m = m'`).
    pub fn all_columns_unique(&self) -> bool {
        use std::collections::HashSet;
        let mut seen: HashSet<Vec<u8>> = HashSet::with_capacity(self.columns);
        for c in 0..self.columns {
            let col: Vec<u8> = (0..self.taxa.len()).map(|t| self.rows[t][c]).collect();
            if !seen.insert(col) {
                return false;
            }
        }
        true
    }

    /// Fraction of cells that are gap characters (`-`, `?`, `.`), a crude
    /// measure of how "gappy" a phylogenomic alignment is.
    pub fn gappyness(&self) -> f64 {
        let total = self.taxa.len() * self.columns;
        if total == 0 {
            return 0.0;
        }
        let gaps: usize = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .filter(|&&b| b == b'-' || b == b'?' || b == b'.')
                    .count()
            })
            .sum();
        gaps as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Alignment {
        Alignment::new(vec![
            ("t1".into(), "ACGTACGT".into()),
            ("t2".into(), "ACGTACGA".into()),
            ("t3".into(), "ACGAACGA".into()),
        ])
        .unwrap()
    }

    #[test]
    fn dimensions_and_names() {
        let a = toy();
        assert_eq!(a.taxa_count(), 3);
        assert_eq!(a.columns(), 8);
        assert_eq!(a.taxon_index("t2"), Some(1));
        assert_eq!(a.taxon_index("missing"), None);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = Alignment::new(vec![
            ("t1".into(), "ACGT".into()),
            ("t2".into(), "ACG".into()),
        ])
        .unwrap_err();
        assert!(matches!(err, DataError::UnequalSequenceLengths { .. }));
    }

    #[test]
    fn rejects_duplicate_taxa() {
        let err = Alignment::new(vec![
            ("t1".into(), "ACGT".into()),
            ("t1".into(), "ACGT".into()),
        ])
        .unwrap_err();
        assert!(matches!(err, DataError::DuplicateTaxon(_)));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(Alignment::new(vec![]), Err(DataError::Empty(_))));
    }

    #[test]
    fn encode_columns_respects_data_type() {
        let a = toy();
        let dna = a.encode_columns(0, &[0, 1, 2, 3], DataType::Dna).unwrap();
        assert_eq!(dna, vec![0b0001, 0b0010, 0b0100, 0b1000]);
    }

    #[test]
    fn encode_reports_invalid_characters() {
        let a = Alignment::new(vec![("t1".into(), "AC1T".into())]).unwrap();
        let err = a
            .encode_columns(0, &[0, 1, 2, 3], DataType::Dna)
            .unwrap_err();
        assert!(matches!(
            err,
            DataError::InvalidCharacter { character: '1', .. }
        ));
    }

    #[test]
    fn unique_columns_detection() {
        let unique = Alignment::new(vec![
            ("t1".into(), "ACGT".into()),
            ("t2".into(), "AAGG".into()),
        ])
        .unwrap();
        assert!(unique.all_columns_unique());

        let repeated = Alignment::new(vec![
            ("t1".into(), "AAGT".into()),
            ("t2".into(), "AAGG".into()),
        ])
        .unwrap();
        assert!(!repeated.all_columns_unique());
    }

    #[test]
    fn gappyness_counts_missing_cells() {
        let a = Alignment::new(vec![
            ("t1".into(), "AC--".into()),
            ("t2".into(), "ACGT".into()),
        ])
        .unwrap();
        assert!((a.gappyness() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn whitespace_in_input_is_ignored() {
        let a = Alignment::new(vec![
            ("t1".into(), "AC GT".into()),
            ("t2".into(), "ACGT".into()),
        ])
        .unwrap();
        assert_eq!(a.columns(), 4);
    }
}
