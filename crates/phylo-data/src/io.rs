//! Sequence file I/O: FASTA and relaxed (sequential) PHYLIP.
//!
//! The readers work on in-memory strings so that they are trivially testable;
//! thin `*_file` wrappers handle the filesystem. The writers produce output
//! that round-trips through the corresponding reader.

use std::path::Path;

use crate::alignment::Alignment;
use crate::error::DataError;

/// Parses a FASTA-formatted string into an [`Alignment`].
///
/// Sequence data may be wrapped over multiple lines; the description after the
/// first whitespace in a header line is ignored.
///
/// # Errors
///
/// [`DataError::Parse`] for structural problems, plus the usual alignment
/// validation errors (ragged rows, duplicate taxa, empty input).
pub fn parse_fasta(text: &str) -> Result<Alignment, DataError> {
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut current: Option<(String, String)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(done) = current.take() {
                rows.push(done);
            }
            let name = header.split_whitespace().next().unwrap_or("").to_string();
            if name.is_empty() {
                return Err(DataError::Parse(format!(
                    "line {}: empty FASTA header",
                    lineno + 1
                )));
            }
            current = Some((name, String::new()));
        } else {
            match current.as_mut() {
                Some((_, seq)) => seq.push_str(line.trim()),
                None => {
                    return Err(DataError::Parse(format!(
                        "line {}: sequence data before any '>' header",
                        lineno + 1
                    )))
                }
            }
        }
    }
    if let Some(done) = current.take() {
        rows.push(done);
    }
    Alignment::new(rows)
}

/// Serializes an alignment as FASTA, wrapping sequence lines at `width`
/// characters (a `width` of 0 writes each sequence on a single line).
pub fn write_fasta(alignment: &Alignment, width: usize) -> String {
    let mut out = String::new();
    for (i, name) in alignment.taxa().iter().enumerate() {
        out.push('>');
        out.push_str(name);
        out.push('\n');
        let row = alignment.row(i);
        if width == 0 {
            out.push_str(&String::from_utf8_lossy(row));
            out.push('\n');
        } else {
            for chunk in row.chunks(width) {
                out.push_str(&String::from_utf8_lossy(chunk));
                out.push('\n');
            }
        }
    }
    out
}

/// Parses a relaxed sequential PHYLIP string: a header line with the number of
/// taxa and columns, followed by one `name sequence` record per taxon (the
/// sequence may continue on following lines until the declared length is
/// reached).
///
/// # Errors
///
/// [`DataError::Parse`] on malformed headers or truncated records.
pub fn parse_phylip(text: &str) -> Result<Alignment, DataError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| DataError::Parse("empty PHYLIP input".into()))?;
    let mut header_tokens = header.split_whitespace();
    let n_taxa: usize = header_tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| DataError::Parse("bad PHYLIP header: missing taxon count".into()))?;
    let n_cols: usize = header_tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| DataError::Parse("bad PHYLIP header: missing column count".into()))?;

    let mut rows: Vec<(String, String)> = Vec::with_capacity(n_taxa);
    let mut pending: Option<(String, String)> = None;
    for raw in lines {
        let line = raw.trim();
        if let Some((name, seq)) = pending.as_mut() {
            seq.push_str(&line.replace(char::is_whitespace, ""));
            if seq.chars().count() >= n_cols {
                rows.push((name.clone(), seq.clone()));
                pending = None;
            }
            continue;
        }
        if rows.len() == n_taxa {
            break;
        }
        let mut tokens = line.splitn(2, char::is_whitespace);
        let name = tokens
            .next()
            .ok_or_else(|| DataError::Parse("missing taxon name in PHYLIP record".into()))?
            .to_string();
        let seq: String = tokens.next().unwrap_or("").replace(char::is_whitespace, "");
        if seq.chars().count() >= n_cols {
            rows.push((name, seq));
        } else {
            pending = Some((name, seq));
        }
    }
    if let Some((name, seq)) = pending {
        if seq.chars().count() >= n_cols {
            rows.push((name, seq));
        } else {
            return Err(DataError::Parse(format!(
                "taxon '{name}' has {} characters, header declares {n_cols}",
                seq.chars().count()
            )));
        }
    }
    if rows.len() != n_taxa {
        return Err(DataError::Parse(format!(
            "PHYLIP header declares {n_taxa} taxa but {} records were found",
            rows.len()
        )));
    }
    let alignment = Alignment::new(rows)?;
    if alignment.columns() != n_cols {
        return Err(DataError::Parse(format!(
            "PHYLIP header declares {n_cols} columns but rows have {}",
            alignment.columns()
        )));
    }
    Ok(alignment)
}

/// Serializes an alignment in relaxed sequential PHYLIP format.
pub fn write_phylip(alignment: &Alignment) -> String {
    let mut out = format!("{} {}\n", alignment.taxa_count(), alignment.columns());
    for (i, name) in alignment.taxa().iter().enumerate() {
        out.push_str(name);
        out.push(' ');
        out.push_str(&String::from_utf8_lossy(alignment.row(i)));
        out.push('\n');
    }
    out
}

/// Reads an alignment from a FASTA file.
///
/// # Errors
///
/// I/O failures are mapped onto [`DataError::Parse`].
pub fn read_fasta_file<P: AsRef<Path>>(path: P) -> Result<Alignment, DataError> {
    let text = std::fs::read_to_string(&path)
        .map_err(|e| DataError::Parse(format!("cannot read {}: {e}", path.as_ref().display())))?;
    parse_fasta(&text)
}

/// Reads an alignment from a PHYLIP file.
///
/// # Errors
///
/// I/O failures are mapped onto [`DataError::Parse`].
pub fn read_phylip_file<P: AsRef<Path>>(path: P) -> Result<Alignment, DataError> {
    let text = std::fs::read_to_string(&path)
        .map_err(|e| DataError::Parse(format!("cannot read {}: {e}", path.as_ref().display())))?;
    parse_phylip(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fasta_round_trip() {
        let text = ">t1 some description\nACGTAC\nGT\n>t2\nACGTACGA\n";
        let aln = parse_fasta(text).unwrap();
        assert_eq!(aln.taxa_count(), 2);
        assert_eq!(aln.columns(), 8);
        assert_eq!(aln.taxa()[0], "t1");

        let rewritten = write_fasta(&aln, 4);
        let reparsed = parse_fasta(&rewritten).unwrap();
        assert_eq!(reparsed, aln);

        let single_line = write_fasta(&aln, 0);
        assert_eq!(parse_fasta(&single_line).unwrap(), aln);
    }

    #[test]
    fn fasta_rejects_data_before_header() {
        assert!(parse_fasta("ACGT\n>t1\nACGT\n").is_err());
        assert!(parse_fasta(">\nACGT\n").is_err());
    }

    #[test]
    fn fasta_rejects_ragged_alignment() {
        assert!(parse_fasta(">a\nACGT\n>b\nACG\n").is_err());
    }

    #[test]
    fn phylip_round_trip() {
        let text = "3 8\ntaxon_1 ACGTACGT\ntaxon_2 ACGTACGA\ntaxon_3 ACCTACGA\n";
        let aln = parse_phylip(text).unwrap();
        assert_eq!(aln.taxa_count(), 3);
        assert_eq!(aln.columns(), 8);
        let rewritten = write_phylip(&aln);
        assert_eq!(parse_phylip(&rewritten).unwrap(), aln);
    }

    #[test]
    fn phylip_multi_line_records() {
        let text = "2 10\nt1 ACGTA\nCGTAC\nt2 ACGTACGTAC\n";
        let aln = parse_phylip(text).unwrap();
        assert_eq!(aln.columns(), 10);
        assert_eq!(aln.taxa()[0], "t1");
    }

    #[test]
    fn phylip_rejects_bad_header_and_truncation() {
        assert!(parse_phylip("").is_err());
        assert!(parse_phylip("x y\n").is_err());
        assert!(parse_phylip("2 8\nt1 ACGTACGT\n").is_err());
        assert!(parse_phylip("1 8\nt1 ACGT\n").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("plf_loadbalance_io_test.fasta");
        let aln = Alignment::new(vec![
            ("a".into(), "ACGT".into()),
            ("b".into(), "ACGA".into()),
        ])
        .unwrap();
        std::fs::write(&path, write_fasta(&aln, 0)).unwrap();
        let read = read_fasta_file(&path).unwrap();
        assert_eq!(read, aln);
        std::fs::remove_file(&path).ok();

        let missing = read_fasta_file("/nonexistent/path/xyz.fasta");
        assert!(missing.is_err());
    }
}
