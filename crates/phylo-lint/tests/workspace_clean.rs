//! The linter's own gate, as a plain test: the real workspace must be clean.
//!
//! This is the same check CI runs via `cargo run -p phylo-lint -- --check`,
//! wired into `cargo test` so a violation fails the ordinary suite too.

use std::path::Path;

use phylo_lint::{inventory, scan_workspace, Baseline};

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_has_no_lint_findings_beyond_the_baseline() {
    let root = workspace_root();
    let (scan, files) = scan_workspace(root);
    assert!(files > 50, "suspiciously few files scanned: {files}");
    let baseline = Baseline::load(root);
    assert!(
        baseline.is_empty(),
        "lint-baseline.txt must stay empty; fix the findings instead"
    );
    let (new, _) = baseline.partition(scan.findings);
    assert!(
        new.is_empty(),
        "lint findings in the workspace:\n{}",
        new.iter()
            .map(|f| format!("  {}", f.render()))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn committed_unsafe_inventory_is_current() {
    let root = workspace_root();
    let (scan, _) = scan_workspace(root);
    let expected = inventory::render(&scan.unsafe_sites);
    let committed = std::fs::read_to_string(root.join("UNSAFE_INVENTORY.md"))
        .expect("UNSAFE_INVENTORY.md missing; run `cargo run -p phylo-lint -- --write-inventory`");
    assert_eq!(
        committed, expected,
        "UNSAFE_INVENTORY.md drifted; run `cargo run -p phylo-lint -- --write-inventory`"
    );
}

#[test]
fn all_unsafe_is_confined_to_phylo_telemetry() {
    let root = workspace_root();
    let (scan, _) = scan_workspace(root);
    for site in &scan.unsafe_sites {
        assert!(
            site.file.starts_with("crates/phylo-telemetry/"),
            "unexpected unsafe outside phylo-telemetry: {}:{}",
            site.file,
            site.line
        );
    }
}
