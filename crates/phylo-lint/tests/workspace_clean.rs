//! The linter's own gate, as a plain test: the real workspace must be clean.
//!
//! This is the same check CI runs via `cargo run -p phylo-lint -- --check`,
//! wired into `cargo test` so a violation fails the ordinary suite too. The
//! reachability-scoping acceptance criteria live here as well: every entry
//! point must resolve, the reachable set must stay a superset of the old
//! `OP_PATH_FILES` list, and no stale waiver may survive.

use std::path::Path;
use std::sync::OnceLock;

use phylo_lint::{
    analyze_workspace, envelope, inventory, Baseline, RuleId, WorkspaceAnalysis, ENTRY_POINTS,
    MIN_REACHABLE_FNS, MIN_RESOLVED_FRACTION, OP_PATH_FILES,
};

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn analysis() -> &'static WorkspaceAnalysis {
    static WS: OnceLock<WorkspaceAnalysis> = OnceLock::new();
    WS.get_or_init(|| analyze_workspace(workspace_root()))
}

#[test]
fn workspace_has_no_lint_findings_beyond_the_baseline() {
    let ws = analysis();
    assert!(
        ws.files > 50,
        "suspiciously few files scanned: {}",
        ws.files
    );
    let baseline = Baseline::load(workspace_root());
    assert!(
        baseline.is_empty(),
        "lint-baseline.txt must stay empty; fix the findings instead"
    );
    let (new, _) = baseline.partition(ws.scan.findings.clone());
    assert!(
        new.is_empty(),
        "lint findings in the workspace:\n{}",
        new.iter()
            .map(|f| format!("  {}", f.render()))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn no_stale_waivers_in_the_workspace() {
    let ws = analysis();
    assert!(
        ws.scan.stale_waivers.is_empty(),
        "stale waivers in the workspace:\n{}",
        ws.scan
            .stale_waivers
            .iter()
            .map(|w| format!("  {}", w.render()))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_entry_point_resolves() {
    let ws = analysis();
    assert_eq!(ws.metrics.entry_points, ENTRY_POINTS.len());
    assert!(
        ws.metrics.missing_entry_points.is_empty(),
        "entry points that matched no extracted function: {:?}",
        ws.metrics.missing_entry_points
    );
}

#[test]
fn reachable_set_is_a_superset_of_op_path_files() {
    // The old hardcoded file list survives only as this sanity check: every
    // file it named must still contain at least one reachable function.
    let ws = analysis();
    let uncovered: Vec<&&str> = OP_PATH_FILES
        .iter()
        .filter(|f| !ws.reachable_files.iter().any(|r| r == **f))
        .collect();
    assert!(
        uncovered.is_empty(),
        "op-path files with no reachable function: {uncovered:?}"
    );
}

#[test]
fn reachability_metrics_clear_the_drift_gates() {
    let m = &analysis().metrics;
    assert!(
        m.fns_reachable as f64 >= MIN_REACHABLE_FNS,
        "reachable set shrank to {} fns (gate: {MIN_REACHABLE_FNS})",
        m.fns_reachable
    );
    assert!(m.fns_total >= m.fns_reachable);
    let fraction = m.callsites_resolved as f64 / m.callsites_total.max(1) as f64;
    assert!(
        fraction >= MIN_RESOLVED_FRACTION,
        "call-site resolution fell to {fraction:.3} (gate: {MIN_RESOLVED_FRACTION})"
    );
}

#[test]
fn order_allocation_and_clock_rules_hold_without_baseline_help() {
    // L006–L008 must report zero un-waived findings on the real tree; their
    // liveness is proven separately by the seeded self-tests in `scan`.
    let ws = analysis();
    let late: Vec<_> = ws
        .scan
        .findings
        .iter()
        .filter(|f| matches!(f.rule, RuleId::L006 | RuleId::L007 | RuleId::L008))
        .collect();
    assert!(
        late.is_empty(),
        "un-waived L006/L007/L008 findings:\n{}",
        late.iter()
            .map(|f| format!("  {}", f.render()))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn envelope_for_the_real_workspace_passes() {
    let ws = analysis();
    let baseline = Baseline::load(workspace_root());
    let (new, _) = baseline.partition(ws.scan.findings.clone());
    let env = envelope(ws, &new, baseline.len(), &[]);
    assert!(env.passed(), "gate violations: {:#?}", env.violations);
}

#[test]
fn committed_unsafe_inventory_is_current() {
    let ws = analysis();
    let expected = inventory::render(&ws.scan.unsafe_sites);
    let committed = std::fs::read_to_string(workspace_root().join("UNSAFE_INVENTORY.md"))
        .expect("UNSAFE_INVENTORY.md missing; run `cargo run -p phylo-lint -- --write-inventory`");
    assert_eq!(
        committed, expected,
        "UNSAFE_INVENTORY.md drifted; run `cargo run -p phylo-lint -- --write-inventory`"
    );
}

#[test]
fn all_unsafe_is_confined_to_phylo_telemetry() {
    for site in &analysis().scan.unsafe_sites {
        assert!(
            site.file.starts_with("crates/phylo-telemetry/"),
            "unexpected unsafe outside phylo-telemetry: {}:{}",
            site.file,
            site.line
        );
    }
}
