//! Item extraction: functions, impl/trait context and call sites, from the
//! blanked code view — still no real parser.
//!
//! [`extract`] walks one file's [`SourceView`] and produces every `fn` item
//! with its enclosing qualifier (`impl Type`, `impl Trait for Type`,
//! `trait Name`), its arity and `self`-ness, its body span in lines, and the
//! call sites found inside the body. This is the raw material the call graph
//! in [`crate::callgraph`] resolves and traverses.
//!
//! The extractor is deliberately lexical. It understands exactly as much
//! Rust as the rules need: item keywords at item position, brace matching
//! over the blanked view (strings and comments can no longer confuse it),
//! angle-bracket generics with the `->`-inside-bounds wrinkle, `r#` raw
//! identifiers, and turbofish call syntax. Closure bodies belong to their
//! enclosing function; `(self.field)(x)` closure-field calls are *not*
//! collected (a documented under-approximation, see ARCHITECTURE.md).

use crate::lexer::SourceView;

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(args)` — a free function (or tuple-struct constructor, which
    /// will simply not resolve).
    Free,
    /// `recv.name(args)` — a method on some receiver whose type the lexical
    /// view cannot know; resolved conservatively to every workspace method
    /// of that name and arity.
    Method,
    /// `Qualifier::name(args)` with the *nearest* path segment as the
    /// qualifier. `Self::` is substituted with the enclosing impl type at
    /// collection time.
    Qualified(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    pub kind: CallKind,
    /// Callee name with any `r#` prefix stripped.
    pub name: String,
    /// Number of argument expressions at the call (commas at paren depth 1,
    /// closure parameter lists skipped).
    pub arity: usize,
    /// 1-based line of the call.
    pub line: usize,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Workspace-relative path, set by the caller of [`extract`].
    pub file: String,
    /// Function name with any `r#` prefix stripped.
    pub name: String,
    /// Enclosing impl type or trait name (`None` for free functions).
    pub qualifier: Option<String>,
    /// The trait being implemented when the enclosing impl is
    /// `impl Trait for Type`.
    pub trait_impl: Option<String>,
    /// Declared inside a `trait` block (signature or default body).
    pub is_trait_decl: bool,
    /// Whether the item has a body (`{ .. }` rather than `;`).
    pub has_body: bool,
    pub has_self: bool,
    /// Parameter count excluding `self`.
    pub arity: usize,
    /// 1-based first line (the `fn` keyword).
    pub start_line: usize,
    /// 1-based last line (the body's closing brace, or the `;`).
    pub end_line: usize,
    /// Lexically inside a `#[cfg(test)]` item.
    pub in_test: bool,
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// `Type::name` for methods/associated fns, plain `name` otherwise —
    /// the form the entry-point list uses.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Keywords that must never be read as a callee name.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "move", "unsafe", "let", "in",
    "as", "ref", "mut", "break", "continue", "where", "impl", "dyn", "box", "async", "await",
    "yield", "static", "const", "use", "pub", "crate", "super", "mod", "struct", "enum", "trait",
    "union", "type", "Self", "self", "true", "false",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Enclosing item context while scanning.
#[derive(Clone)]
enum Ctx {
    Module,
    Impl {
        type_name: String,
        trait_name: Option<String>,
    },
    Trait {
        name: String,
    },
}

struct Parser<'a> {
    chars: Vec<char>,
    /// 1-based line per char index.
    line_at: Vec<u32>,
    /// `(start, end)` line ranges under `#[cfg(test)]`.
    test_ranges: &'a [(usize, usize)],
    file: &'a str,
}

/// Extracts every `fn` item of one file. `test_ranges` are the
/// `#[cfg(test)]` line ranges computed by the scanner over the same view.
pub fn extract(file: &str, view: &SourceView, test_ranges: &[(usize, usize)]) -> Vec<FnItem> {
    let chars: Vec<char> = view.code.chars().collect();
    let mut line_at = Vec::with_capacity(chars.len());
    let mut line = 1u32;
    for &c in &chars {
        line_at.push(line);
        if c == '\n' {
            line += 1;
        }
    }
    let mut parser = Parser {
        chars,
        line_at,
        test_ranges,
        file,
    };
    let mut out = Vec::new();
    let end = parser.chars.len();
    parser.scan_items(0, end, &Ctx::Module, &mut out);
    out
}

impl Parser<'_> {
    fn line_of(&self, i: usize) -> usize {
        self.line_at
            .get(i.min(self.line_at.len().saturating_sub(1)))
            .copied()
            .unwrap_or(1) as usize
    }

    fn in_test(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    fn skip_ws(&self, mut i: usize, end: usize) -> usize {
        while i < end && self.chars[i].is_whitespace() {
            i += 1;
        }
        i
    }

    /// Reads an identifier at `i`, honoring an `r#` prefix (stripped from
    /// the returned name). Returns `(name, end_index, was_raw)` — a raw
    /// identifier is never a keyword, whatever it spells.
    fn ident_at(&self, mut i: usize, end: usize) -> Option<(String, usize, bool)> {
        let mut raw = false;
        if i + 1 < end && self.chars[i] == 'r' && self.chars[i + 1] == '#' {
            raw = true;
            i += 2;
        }
        if i >= end || !is_ident_start(self.chars[i]) {
            return None;
        }
        let start = i;
        while i < end && is_ident_char(self.chars[i]) {
            i += 1;
        }
        let name: String = self.chars[start..i].iter().collect();
        Some((name, i, raw))
    }

    /// From an opening `{` at `i`, the index of its matching `}` (or `end`).
    fn match_brace(&self, i: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            match self.chars[j] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end.saturating_sub(1)
    }

    /// From an opening `<` at `i`, the index just past its matching `>`.
    /// `->` arrows inside bounds (`F: Fn() -> R`) do not close the angle.
    fn skip_generics(&self, i: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            match self.chars[j] {
                '<' => depth += 1,
                '-' if j + 1 < end && self.chars[j + 1] == '>' => {
                    j += 2;
                    continue;
                }
                '>' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                '{' => {
                    // Const-generic default expression: skip it whole.
                    j = self.match_brace(j, end);
                }
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Item-level scan of `[i, end)` under `ctx`.
    fn scan_items(&mut self, mut i: usize, end: usize, ctx: &Ctx, out: &mut Vec<FnItem>) {
        while i < end {
            let c = self.chars[i];
            if c == '{' {
                // A stray block at item level (e.g. a const initializer that
                // slipped through): skip it whole.
                i = self.match_brace(i, end) + 1;
                continue;
            }
            if !is_ident_start(c) {
                i += 1;
                continue;
            }
            let Some((word, after, raw)) = self.ident_at(i, end) else {
                i += 1;
                continue;
            };
            if raw {
                i = after;
                continue;
            }
            match word.as_str() {
                "fn" => i = self.parse_fn(after, end, ctx, out),
                "impl" => i = self.parse_impl(after, end, out),
                "trait" => i = self.parse_trait(after, end, out),
                "mod" => i = self.parse_mod(after, end, out),
                // Items whose bodies hold no functions: skip to `;` or past
                // their block so field/variant types are never misread.
                // `const fn` is a function, not a const item.
                "struct" | "enum" | "union" | "use" | "type" | "static" | "const" => {
                    let n = self.skip_ws(after, end);
                    let next_is_fn = self
                        .ident_at(n, end)
                        .is_some_and(|(w, _, r)| !r && w == "fn");
                    if word == "const" && next_is_fn {
                        i = after;
                    } else {
                        i = self.skip_item_rest(after, end);
                    }
                }
                _ => i = after,
            }
        }
    }

    /// Skips to the end of a non-fn item: past its `;`, or past its `{ .. }`
    /// block, whichever comes first.
    fn skip_item_rest(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            match self.chars[i] {
                ';' => return i + 1,
                '{' => return self.match_brace(i, end) + 1,
                '<' => i = self.skip_generics(i, end),
                _ => i += 1,
            }
        }
        end
    }

    fn parse_mod(&mut self, i: usize, end: usize, out: &mut Vec<FnItem>) -> usize {
        let mut j = self.skip_ws(i, end);
        if let Some((_, after, _)) = self.ident_at(j, end) {
            j = self.skip_ws(after, end);
        }
        match self.chars.get(j) {
            Some('{') => {
                let close = self.match_brace(j, end);
                self.scan_items(j + 1, close, &Ctx::Module, out);
                close + 1
            }
            _ => j + 1, // `mod name;`
        }
    }

    fn parse_trait(&mut self, i: usize, end: usize, out: &mut Vec<FnItem>) -> usize {
        let j = self.skip_ws(i, end);
        let Some((name, after, _)) = self.ident_at(j, end) else {
            return j + 1;
        };
        // Bounds and where clauses hold no braces; the next `{` is the body.
        let mut k = after;
        while k < end && self.chars[k] != '{' && self.chars[k] != ';' {
            k += 1;
        }
        if self.chars.get(k) == Some(&'{') {
            let close = self.match_brace(k, end);
            self.scan_items(k + 1, close, &Ctx::Trait { name }, out);
            return close + 1;
        }
        k + 1
    }

    fn parse_impl(&mut self, i: usize, end: usize, out: &mut Vec<FnItem>) -> usize {
        let mut j = self.skip_ws(i, end);
        if self.chars.get(j) == Some(&'<') {
            j = self.skip_generics(j, end);
        }
        // Read path segments up to `{`; a `for` token splits trait and type.
        let mut first_path: Option<String> = None; // trait in `impl T for U`
        let mut last_segment = String::new();
        let mut saw_for = false;
        while j < end {
            let c = self.chars[j];
            if c == '{' {
                break;
            }
            if c == '<' {
                j = self.skip_generics(j, end);
                continue;
            }
            if is_ident_start(c) {
                let Some((word, after, _)) = self.ident_at(j, end) else {
                    j += 1;
                    continue;
                };
                match word.as_str() {
                    "for" => {
                        first_path = Some(std::mem::take(&mut last_segment));
                        saw_for = true;
                    }
                    "where" => {
                        // Nothing after `where` names the self type; scan to
                        // the body brace.
                        while j < end && self.chars[j] != '{' {
                            j += 1;
                        }
                        continue;
                    }
                    "dyn" | "mut" => {}
                    _ => last_segment = word,
                }
                j = after;
                continue;
            }
            j += 1;
        }
        let type_name = last_segment;
        let trait_name = if saw_for { first_path } else { None };
        if self.chars.get(j) == Some(&'{') {
            let close = self.match_brace(j, end);
            let ctx = Ctx::Impl {
                type_name,
                trait_name,
            };
            self.scan_items(j + 1, close, &ctx, out);
            return close + 1;
        }
        j + 1
    }

    /// Parses one `fn` starting just past the `fn` keyword. Returns the
    /// index to resume scanning at.
    fn parse_fn(&mut self, i: usize, end: usize, ctx: &Ctx, out: &mut Vec<FnItem>) -> usize {
        let start_line = self.line_of(i.saturating_sub(2));
        let j = self.skip_ws(i, end);
        let Some((name, after_name, _)) = self.ident_at(j, end) else {
            return j + 1;
        };
        let mut k = self.skip_ws(after_name, end);
        if self.chars.get(k) == Some(&'<') {
            k = self.skip_generics(k, end);
            k = self.skip_ws(k, end);
        }
        if self.chars.get(k) != Some(&'(') {
            return k;
        }
        let (has_self, arity, after_params) = self.parse_params(k, end);
        // Return type and where clause hold no braces; the next `{` (or `;`
        // for a bodyless trait method) delimits the item.
        let mut b = after_params;
        while b < end && self.chars[b] != '{' && self.chars[b] != ';' {
            if self.chars[b] == '<' {
                b = self.skip_generics(b, end);
                continue;
            }
            b += 1;
        }
        let (qualifier, trait_impl, is_trait_decl) = match ctx {
            Ctx::Module => (None, None, false),
            Ctx::Impl {
                type_name,
                trait_name,
            } => (
                Some(type_name.clone()).filter(|t| !t.is_empty()),
                trait_name.clone(),
                false,
            ),
            Ctx::Trait { name } => (Some(name.clone()), None, true),
        };
        let mut item = FnItem {
            file: self.file.to_string(),
            name,
            qualifier,
            trait_impl,
            is_trait_decl,
            has_body: false,
            has_self,
            arity,
            start_line,
            end_line: self.line_of(b),
            in_test: self.in_test(start_line),
            calls: Vec::new(),
        };
        if self.chars.get(b) == Some(&'{') {
            let close = self.match_brace(b, end);
            item.has_body = true;
            item.end_line = self.line_of(close);
            let self_type = match ctx {
                Ctx::Impl { type_name, .. } => Some(type_name.as_str()),
                Ctx::Trait { name } => Some(name.as_str()),
                Ctx::Module => None,
            };
            self.collect_calls(b + 1, close, self_type, &mut item.calls, out);
            out.push(item);
            return close + 1;
        }
        out.push(item);
        b + 1
    }

    /// Parses a parenthesized parameter list at `open` (pointing at `(`).
    /// Returns `(has_self, arity_excluding_self, index_past_close)`.
    fn parse_params(&self, open: usize, end: usize) -> (bool, usize, usize) {
        let mut depth = 0usize;
        let mut angle = 0usize;
        let mut commas = 0usize;
        let mut first_param = String::new();
        let mut any = false;
        let mut j = open;
        while j < end {
            let c = self.chars[j];
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                '<' => angle += 1,
                '-' if self.chars.get(j + 1) == Some(&'>') => {
                    j += 2;
                    continue;
                }
                '>' => angle = angle.saturating_sub(1),
                ',' if depth == 1 && angle == 0 => commas += 1,
                _ => {}
            }
            if depth >= 1 && !(depth == 1 && c == '(') {
                if !c.is_whitespace() {
                    any = true;
                }
                if commas == 0 && !(depth == 1 && c == '(') {
                    first_param.push(c);
                }
            }
            j += 1;
        }
        let count = if any { commas + 1 } else { 0 };
        let first = first_param.trim();
        let has_self = {
            let mut t = first;
            loop {
                let before = t;
                t = t.trim_start_matches('&').trim_start();
                if let Some(rest) = t.strip_prefix('\'') {
                    let skip = rest.find(|c: char| !is_ident_char(c)).unwrap_or(rest.len());
                    t = rest[skip..].trim_start();
                }
                if let Some(rest) = t.strip_prefix("mut ") {
                    t = rest.trim_start();
                }
                if t == before {
                    break;
                }
            }
            t == "self"
                || t.starts_with("self:")
                || t.starts_with("self ")
                || t.starts_with("self,")
        };
        let arity = count.saturating_sub(usize::from(has_self));
        (has_self, arity, (j + 1).min(end))
    }

    /// Collects call sites in a body span; nested `fn` items recurse into
    /// [`Self::parse_fn`] and their bodies are excluded from this one.
    fn collect_calls(
        &mut self,
        mut i: usize,
        end: usize,
        self_type: Option<&str>,
        calls: &mut Vec<CallSite>,
        out: &mut Vec<FnItem>,
    ) {
        while i < end {
            let c = self.chars[i];
            if !is_ident_start(c) {
                i += 1;
                continue;
            }
            // An identifier-char run entered mid-token is not a name start.
            if i > 0 && is_ident_char(self.chars[i - 1]) {
                i += 1;
                while i < end && is_ident_char(self.chars[i]) {
                    i += 1;
                }
                continue;
            }
            // A `#` directly before means this is the tail of `r#ident`;
            // back up so ident_at sees the full raw identifier.
            let tok_start = if i >= 2 && self.chars[i - 1] == '#' && self.chars[i - 2] == 'r' {
                i - 2
            } else {
                i
            };
            let Some((word, after, raw)) = self.ident_at(tok_start, end) else {
                i += 1;
                continue;
            };
            if !raw && word == "fn" {
                i = self.parse_fn(after, end, &Ctx::Module, out);
                continue;
            }
            if !raw && KEYWORDS.contains(&word.as_str()) {
                i = after;
                continue;
            }
            let mut k = self.skip_ws(after, end);
            // Macro invocation: the name itself is not a call, but its
            // arguments are real expressions — keep scanning inside them.
            if self.chars.get(k) == Some(&'!') {
                i = k + 1;
                continue;
            }
            // Turbofish between name and arguments.
            if self.chars.get(k) == Some(&':')
                && self.chars.get(k + 1) == Some(&':')
                && self.chars.get(k + 2) == Some(&'<')
            {
                k = self.skip_generics(k + 2, end);
                k = self.skip_ws(k, end);
            }
            if self.chars.get(k) != Some(&'(') {
                i = after;
                continue;
            }
            let kind = self.call_kind(tok_start, self_type);
            let arity = self.call_arity(k, end);
            calls.push(CallSite {
                kind,
                name: word,
                arity,
                line: self.line_of(tok_start),
            });
            // Resume just past the open paren: arguments are scanned for
            // their own nested calls.
            i = k + 1;
        }
    }

    /// Classifies the call at `name_start` by what precedes it.
    fn call_kind(&self, name_start: usize, self_type: Option<&str>) -> CallKind {
        let mut p = name_start;
        while p > 0 && self.chars[p - 1].is_whitespace() {
            p -= 1;
        }
        if p == 0 {
            return CallKind::Free;
        }
        match self.chars[p - 1] {
            '.' => {
                // `..name(` is a range bound around a free call, not a
                // method call.
                if p >= 2 && self.chars[p - 2] == '.' {
                    CallKind::Free
                } else {
                    CallKind::Method
                }
            }
            ':' if p >= 2 && self.chars[p - 2] == ':' => {
                let qualifier = self.path_qualifier(p - 2);
                match qualifier {
                    Some(q) if q == "Self" => match self_type {
                        Some(t) => CallKind::Qualified(t.to_string()),
                        None => CallKind::Free,
                    },
                    Some(q) => CallKind::Qualified(q),
                    None => CallKind::Free,
                }
            }
            _ => CallKind::Free,
        }
    }

    /// The path segment directly before a `::` ending at `colons` (pointing
    /// at the first `:`). Skips a trailing generic list (`Vec::<u8>::new`).
    fn path_qualifier(&self, colons: usize) -> Option<String> {
        let mut p = colons;
        if p == 0 {
            return None;
        }
        if self.chars[p - 1] == '>' {
            // Walk back over the matching `<ident, ...>` list.
            let mut depth = 0usize;
            while p > 0 {
                p -= 1;
                match self.chars[p] {
                    '>' => depth += 1,
                    '<' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            // Turbofish carries its own `::` before the list
            // (`Vec::<usize>::new`); step over it to reach the segment.
            if p >= 2 && self.chars[p - 1] == ':' && self.chars[p - 2] == ':' {
                p -= 2;
            }
        }
        let seg_end = p;
        let mut seg_start = seg_end;
        while seg_start > 0 && is_ident_char(self.chars[seg_start - 1]) {
            seg_start -= 1;
        }
        if seg_start == seg_end {
            return None;
        }
        // Strip an `r#` prefix if present.
        let mut s = seg_start;
        if s >= 2 && self.chars[s - 1] == '#' && self.chars[s - 2] == 'r' {
            s = seg_start;
        }
        Some(self.chars[s..seg_end].iter().collect())
    }

    /// Argument count at an open paren: top-level commas + 1 (0 when
    /// empty), commas inside closure parameter lists excluded, trailing
    /// comma ignored.
    fn call_arity(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut commas = 0usize;
        let mut any = false;
        let mut last_nonws = ' ';
        let mut j = open;
        while j < end {
            let c = self.chars[j];
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => commas += 1,
                '|' if depth == 1 && matches!(last_nonws, '(' | ',' | '=' | '{' | ';') => {
                    // A closure's parameter list: skip to its closing pipe
                    // (`||` is the empty list).
                    if self.chars.get(j + 1) == Some(&'|') {
                        j += 2;
                        last_nonws = '|';
                        continue;
                    }
                    j += 1;
                    while j < end && self.chars[j] != '|' {
                        j += 1;
                    }
                }
                _ => {}
            }
            if !c.is_whitespace() {
                if depth >= 1 && !(depth == 1 && c == '(') {
                    any = true;
                }
                last_nonws = c;
            }
            j += 1;
        }
        if !any {
            return 0;
        }
        // `f(a, b,)` — a trailing comma does not open another argument.
        let inner_end = j;
        let mut q = inner_end;
        while q > open + 1 && self.chars[q - 1].is_whitespace() {
            q -= 1;
        }
        if q > open + 1 && self.chars[q - 1] == ',' {
            commas = commas.saturating_sub(1);
        }
        commas + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Vec<FnItem> {
        let view = SourceView::new(src);
        let ranges = crate::scan::cfg_test_ranges(&view.code);
        extract("crates/x/src/lib.rs", &view, &ranges)
    }

    #[test]
    fn free_fn_with_span_and_arity() {
        let src = "pub fn add(a: usize, b: usize) -> usize {\n    a + b\n}\n";
        let fns = items(src);
        assert_eq!(fns.len(), 1);
        let f = &fns[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.qualifier, None);
        assert_eq!(f.arity, 2);
        assert!(!f.has_self);
        assert_eq!((f.start_line, f.end_line), (1, 3));
    }

    #[test]
    fn impl_methods_get_the_type_qualifier() {
        let src = "\
struct Engine;
impl Engine {
    pub fn run(&mut self, steps: usize) { self.tick(steps); }
    fn tick(&mut self, n: usize) {}
}
";
        let fns = items(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].qualified_name(), "Engine::run");
        assert!(fns[0].has_self);
        assert_eq!(fns[0].arity, 1);
        assert_eq!(fns[0].calls.len(), 1);
        assert_eq!(fns[0].calls[0].kind, CallKind::Method);
        assert_eq!(fns[0].calls[0].name, "tick");
    }

    #[test]
    fn trait_impls_carry_the_trait_name() {
        let src = "\
trait Executor { fn execute(&mut self, op: usize) -> usize; }
struct A;
impl Executor for A {
    fn execute(&mut self, op: usize) -> usize { op }
}
";
        let fns = items(src);
        let decl = fns.iter().find(|f| f.is_trait_decl).unwrap();
        assert_eq!(decl.qualified_name(), "Executor::execute");
        assert!(!decl.has_body);
        let imp = fns.iter().find(|f| !f.is_trait_decl).unwrap();
        assert_eq!(imp.qualifier.as_deref(), Some("A"));
        assert_eq!(imp.trait_impl.as_deref(), Some("Executor"));
    }

    #[test]
    fn generic_impl_headers_resolve_the_type_name() {
        let src = "\
impl<E: Executor> LikelihoodKernel<E> {
    pub fn try_run(&mut self) -> Result<f64, ()> { helper() }
}
fn helper() -> Result<f64, ()> { Ok(0.0) }
";
        let fns = items(src);
        assert_eq!(fns[0].qualified_name(), "LikelihoodKernel::try_run");
        assert_eq!(fns[0].calls[0].kind, CallKind::Free);
        assert_eq!(fns[0].calls[0].name, "helper");
    }

    #[test]
    fn qualified_and_self_calls() {
        let src = "\
struct T;
impl T {
    fn a(&self) { Self::b(); Other::c(1, 2); std::mem::drop(3); }
    fn b() {}
}
";
        let fns = items(src);
        let calls = &fns[0].calls;
        assert_eq!(calls[0].kind, CallKind::Qualified("T".into()));
        assert_eq!(calls[1].kind, CallKind::Qualified("Other".into()));
        assert_eq!(calls[1].arity, 2);
        assert_eq!(calls[2].kind, CallKind::Qualified("mem".into()));
    }

    #[test]
    fn turbofish_and_closure_args() {
        let src = "\
fn f(v: Vec<usize>) -> Vec<usize> {
    let x = Vec::<usize>::with_capacity(4);
    v.iter().map(|a| a + 1).collect::<Vec<_>>()
}
";
        let fns = items(src);
        let calls = &fns[0].calls;
        let wc = calls.iter().find(|c| c.name == "with_capacity").unwrap();
        assert_eq!(wc.kind, CallKind::Qualified("Vec".into()));
        assert_eq!(wc.arity, 1);
        let map = calls.iter().find(|c| c.name == "map").unwrap();
        assert_eq!(map.arity, 1, "closure params must not inflate arity");
        let collect = calls.iter().find(|c| c.name == "collect").unwrap();
        assert_eq!(collect.arity, 0);
    }

    #[test]
    fn raw_identifiers_round_trip() {
        let src = "fn r#match(x: usize) -> usize { x }\nfn f() { r#match(1); }\n";
        let fns = items(src);
        assert_eq!(fns[0].name, "match");
        assert_eq!(fns[1].calls.len(), 1);
        assert_eq!(fns[1].calls[0].name, "match");
        assert_eq!(fns[1].calls[0].arity, 1);
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "\
fn shipped() {}
#[cfg(test)]
mod tests {
    fn helper() { super::shipped(); }
}
";
        let fns = items(src);
        assert!(!fns[0].in_test);
        assert!(fns[1].in_test);
    }

    #[test]
    fn closure_field_calls_are_not_collected() {
        // `(self.callback)(x)` is a closure-field invocation; the lexical
        // collector ignores it (documented under-approximation) instead of
        // inventing a method edge.
        let src = "\
struct S { callback: fn(usize) }
impl S {
    fn fire(&self, x: usize) { (self.callback)(x); }
}
";
        let fns = items(src);
        assert!(fns[0].calls.is_empty());
    }

    #[test]
    fn nested_fns_are_separate_items() {
        let src = "\
fn outer() {
    fn inner(x: usize) -> usize { x }
    inner(3);
}
";
        let fns = items(src);
        let inner = fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!((inner.start_line, inner.end_line), (2, 2));
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].name, "inner");
    }

    #[test]
    fn where_clauses_and_fn_pointer_params() {
        let src = "\
fn apply<F>(f: F, x: usize) -> usize
where
    F: Fn(usize) -> usize,
{
    f(x)
}
";
        let fns = items(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].arity, 2);
        assert_eq!(fns[0].end_line, 6);
    }

    #[test]
    fn struct_literal_and_tuple_variant_noise_stays_unresolvable() {
        let src = "\
enum E { V(usize) }
fn f() -> E {
    let _ = Some(1);
    E::V(2)
}
";
        let fns = items(src);
        let calls = &fns[0].calls;
        assert!(calls.iter().any(|c| c.name == "Some"));
        assert!(calls
            .iter()
            .any(|c| c.name == "V" && c.kind == CallKind::Qualified("E".into())));
    }
}
