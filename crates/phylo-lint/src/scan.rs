//! The scanner: applies the rules of [`crate::rules`] to source files,
//! honoring `#[cfg(test)]` exclusions, inline waivers, and — since PR 10 —
//! the per-file reachability scope computed by [`crate::callgraph`].
//!
//! L003/L004 remain workspace-wide. L001/L002/L005/L006 apply to lines
//! inside functions reachable from the op-path entry points
//! ([`FileScope::op_path`]); L007 to loop bodies of reachable kernel
//! functions ([`FileScope::kernel`]); L008 to reachable code outside the
//! telemetry timing facade ([`FileScope::clock`]).

use crate::lexer::{token_matches, SourceView};
use crate::rules::{Finding, RuleId};

/// The PR 7 hardcoded op-path file list, kept only as a **must-be-subset**
/// sanity check: every file here must still contain at least one function
/// the reachability analysis marks reachable, or the analysis (not the
/// code) has regressed. Scoping itself now comes from
/// [`crate::callgraph::ENTRY_POINTS`].
pub const OP_PATH_FILES: &[&str] = &[
    "crates/phylo-kernel/src/ops.rs",
    "crates/phylo-kernel/src/blocked.rs",
    "crates/phylo-kernel/src/slice.rs",
    "crates/phylo-kernel/src/tables.rs",
    "crates/phylo-kernel/src/executor.rs",
    "crates/phylo-kernel/src/engine.rs",
    "crates/phylo-parallel/src/threaded.rs",
    "crates/phylo-parallel/src/rayon_exec.rs",
    "crates/phylo-parallel/src/tracing.rs",
    "crates/phylo-serve/src/pool.rs",
    "crates/phylo-serve/src/dispatch.rs",
    "crates/phylo-serve/src/session.rs",
];

const L001_NEEDLES: &[&str] = &["panic!", ".unwrap()", ".expect(", "unreachable!", "todo!"];
const L002_NEEDLES: &[&str] = &["debug_assert!", "debug_assert_eq!", "debug_assert_ne!"];
const L004_NEEDLES: &[&str] = &["std::sync::atomic", "core::sync::atomic"];
const L005_NEEDLES: &[&str] = &["Mutex<", "RwLock<", ".lock()"];
/// Allocation forms banned inside kernel loop bodies. `.clone()` is here
/// for buffers — an `Arc` clone in an inner loop is also a (refcount
/// contention) bug, so no exception is carved out.
const L007_NEEDLES: &[&str] = &[
    "Vec::new",
    "vec!",
    ".to_vec()",
    ".collect",
    "format!",
    "Box::new",
    "String::new",
    ".to_string()",
    ".to_owned()",
    "with_capacity",
    ".clone()",
    ".push(",
    ".extend(",
];
const L008_NEEDLES: &[&str] = &[
    "Instant::now",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "rand::random",
];
/// Iteration adaptors whose order is the hash order (L006).
const L006_SUFFIXES: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// Whether `file` may mention `std::sync::atomic` (L004): anything under a
/// `sync` module of its crate.
pub fn in_sync_module(file: &str) -> bool {
    file.contains("/src/sync/") || file.ends_with("/src/sync.rs")
}

/// The line ranges (1-based, inclusive) a rule applies to in one file,
/// derived from the reachable function spans. A file absent from the
/// analysis gets [`FileScope::default`] — no op-path rules, matching the
/// old behavior for non-op-path files.
#[derive(Debug, Clone, Default)]
pub struct FileScope {
    /// L001/L002/L005/L006: reachable function bodies.
    pub op_path: Vec<(usize, usize)>,
    /// L007: reachable functions in kernel-loop files.
    pub kernel: Vec<(usize, usize)>,
    /// L008: reachable functions outside the telemetry facade.
    pub clock: Vec<(usize, usize)>,
}

impl FileScope {
    /// A scope covering the whole file under every rule — used by
    /// seeded-violation self-tests.
    pub fn everything() -> Self {
        let all = vec![(1, usize::MAX)];
        Self {
            op_path: all.clone(),
            kernel: all.clone(),
            clock: all,
        }
    }
}

fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// One `// lint:allow(LXXX): reason` directive, tracked for the stale audit.
#[derive(Debug, Clone)]
struct WaiverSite {
    /// `None` when the comment names an unknown rule ID.
    rule: Option<RuleId>,
    /// The rule text as written.
    raw_rule: String,
    /// Line the directive's comment starts on (reported for stale waivers).
    line: usize,
    /// The single code line this waiver covers: its own line for a trailing
    /// comment, otherwise the first code line after the comment block
    /// (0 = no code follows, the waiver can never match).
    target: usize,
    has_reason: bool,
    used: bool,
}

/// Parses every `lint:allow(...)` directive in `text`, anchored at `line`
/// and covering `target`.
fn parse_directives(text: &str, line: usize, target: usize, out: &mut Vec<WaiverSite>) {
    let mut from = 0;
    while let Some(pos) = text[from..].find("lint:allow(") {
        let at = from + pos + "lint:allow(".len();
        let Some(close) = text[at..].find(')') else {
            break;
        };
        let raw_rule = text[at..at + close].trim().to_string();
        let rest = text[at + close + 1..].trim_start();
        let has_reason = rest.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
        out.push(WaiverSite {
            rule: RuleId::parse(&raw_rule),
            raw_rule,
            line,
            target,
            has_reason,
            used: false,
        });
        from = at + close + 1;
    }
}

fn collect_waivers(view: &SourceView) -> Vec<WaiverSite> {
    // Which lines of the blanked view still hold code (1-based).
    let code_has: Vec<bool> = std::iter::once(false) // line 0 padding
        .chain(view.code.lines().map(|l| !l.trim().is_empty()))
        .collect();
    let has_code = |line: usize| code_has.get(line).copied().unwrap_or(false);

    let mut out = Vec::new();
    let comments = &view.comments;
    let mut i = 0usize;
    while i < comments.len() {
        let (line, text) = (&comments[i].0, &comments[i].1);
        // A waiver comment *starts* with the directive (several may be
        // chained, and the chain may wrap onto continuation lines); prose
        // that merely mentions the syntax — like this crate's own docs — is
        // not a waiver.
        if !text.trim_start().starts_with("lint:allow(") {
            i += 1;
            continue;
        }
        if has_code(*line) {
            // Trailing comment on a code line: covers exactly that line.
            parse_directives(text, *line, *line, &mut out);
            i += 1;
            continue;
        }
        // Standalone comment block: absorb continuation lines (consecutive
        // comment-only lines that don't start a new directive), then cover
        // the first code line after the block.
        let mut chained = text.clone();
        let mut last = *line;
        let mut j = i + 1;
        while j < comments.len()
            && comments[j].0 == last + 1
            && !has_code(comments[j].0)
            && !comments[j].1.trim_start().starts_with("lint:allow(")
        {
            chained.push(' ');
            chained.push_str(&comments[j].1);
            last = comments[j].0;
            j += 1;
        }
        let target = (last + 1..code_has.len())
            .find(|&l| code_has[l])
            .unwrap_or(0);
        parse_directives(&chained, *line, target, &mut out);
        i = j;
    }
    out
}

/// Marks any waiver covering (`rule`, `line`) as used; returns whether the
/// finding is suppressed (a matching waiver with a non-empty reason).
fn apply_waivers(waivers: &mut [WaiverSite], rule: RuleId, line: usize) -> bool {
    let mut suppressed = false;
    for w in waivers.iter_mut() {
        if w.rule == Some(rule) && w.target == line {
            w.used = true;
            if w.has_reason {
                suppressed = true;
            }
        }
    }
    suppressed
}

/// A waiver comment that matched no current finding — itself an error
/// (satellite: waivers must not rot after refactors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleWaiver {
    pub file: String,
    pub line: usize,
    /// The rule text as written in the comment.
    pub rule: String,
}

impl StaleWaiver {
    /// The canonical report line.
    pub fn render(&self) -> String {
        format!(
            "stale waiver lint:allow({}) at {}:{} matches no current finding",
            self.rule, self.file, self.line
        )
    }
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items.
/// Operates on the blanked code view, so strings can't fake the attribute.
pub fn cfg_test_ranges(code: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut from = 0usize;
    let flat = code;
    while let Some(pos) = flat[from..].find("#[cfg(test)]") {
        let start = from + pos;
        let start_line = flat[..start].matches('\n').count() + 1;
        // Find the item body: the first `{` after the attribute (brace-match
        // to its close), or a `;` if it comes first (attribute on a
        // braceless item).
        let mut j = start + "#[cfg(test)]".len();
        let mut end = flat.len();
        let body = flat[j..].find(['{', ';']).map(|o| j + o);
        if let Some(open) = body {
            if flat[open..].starts_with(';') {
                end = open;
            } else {
                let mut depth = 0usize;
                j = open;
                while j < flat.len() {
                    match flat.as_bytes()[j] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                end = j;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        let end_line = flat[..end].matches('\n').count() + 1;
        ranges.push((start_line, end_line));
        from = start + 1;
    }
    ranges
}

/// Line ranges of loop bodies (`for`/`while`/`loop`), for L007. Runs over
/// the blanked code view. `impl Trait for Type` and HRTB `for<'a>` are not
/// loops; closure braces inside a loop header are skipped via paren depth.
pub fn loop_ranges(code: &str) -> Vec<(usize, usize)> {
    let chars: Vec<char> = code.chars().collect();
    let mut line_at = Vec::with_capacity(chars.len());
    let mut line = 1usize;
    for &c in &chars {
        line_at.push(line);
        if c == '\n' {
            line += 1;
        }
    }
    let line_of = |i: usize| -> usize {
        line_at
            .get(i.min(line_at.len().saturating_sub(1)))
            .copied()
            .unwrap_or(1)
    };
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if !(c.is_alphabetic() || c == '_') {
            i += 1;
            continue;
        }
        if i > 0 && ident(chars[i - 1]) {
            while i < chars.len() && ident(chars[i]) {
                i += 1;
            }
            continue;
        }
        let start = i;
        while i < chars.len() && ident(chars[i]) {
            i += 1;
        }
        let word: String = chars[start..i].iter().collect();
        let is_loop = match word.as_str() {
            "while" | "loop" => true,
            "for" => {
                let mut j = i;
                while j < chars.len() && chars[j].is_whitespace() {
                    j += 1;
                }
                if chars.get(j) == Some(&'<') {
                    false // HRTB `for<'a>`
                } else {
                    // `impl Trait for Type`: "for" preceded by a path
                    // segment or closing generics.
                    let mut p = start;
                    while p > 0 && chars[p - 1].is_whitespace() {
                        p -= 1;
                    }
                    !(p > 0 && (ident(chars[p - 1]) || chars[p - 1] == '>'))
                }
            }
            _ => false,
        };
        if !is_loop {
            continue;
        }
        // The body `{`: first brace at bracket depth 0 (closures inside the
        // header sit behind parens; struct literals are illegal in loop
        // headers without parens).
        let mut j = i;
        let mut depth = 0i32;
        while j < chars.len() {
            match chars[j] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => break,
                ';' if depth == 0 => {
                    j = chars.len();
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if chars.get(j) != Some(&'{') {
            continue;
        }
        let open = j;
        let mut bd = 0usize;
        let mut close = chars.len().saturating_sub(1);
        while j < chars.len() {
            match chars[j] {
                '{' => bd += 1,
                '}' => {
                    bd -= 1;
                    if bd == 0 {
                        close = j;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        out.push((line_of(open), line_of(close)));
        i = open + 1; // keep scanning inside: nested loops get own ranges
    }
    out
}

/// Identifiers bound to a `HashMap`/`HashSet` in this file — locals
/// (`let m = HashMap::new()`), fields (`tenants: HashMap<..>`) and
/// parameters (`m: &HashMap<..>`). File-local by construction: a hash map
/// bound in another file and iterated here is a documented
/// under-approximation.
pub fn hash_bindings(code: &str) -> Vec<String> {
    let keyword = |s: &str| {
        matches!(
            s,
            "in" | "if" | "let" | "mut" | "ref" | "pub" | "fn" | "where" | "return" | "as"
        )
    };
    let trailing_ident = |s: &str| -> Option<String> {
        let t = s.trim_end();
        let start = t
            .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
            .map_or(0, |p| p + 1);
        let id = &t[start..];
        (!id.is_empty() && !id.starts_with(|c: char| c.is_ascii_digit()) && !keyword(id))
            .then(|| id.to_string())
    };
    let mut out: Vec<String> = Vec::new();
    for line in code.lines() {
        for ty in ["HashMap", "HashSet"] {
            for col in token_matches(line, ty) {
                let mut before = line[..col].trim_end();
                // See through reference sigils: `lanes: &HashSet<..>`,
                // `m: &mut HashMap<..>`.
                loop {
                    let prev = before;
                    before = before.trim_end_matches('&').trim_end();
                    if let Some(b) = before.strip_suffix("mut") {
                        if b.ends_with([' ', '&']) {
                            before = b.trim_end();
                        }
                    }
                    if before == prev {
                        break;
                    }
                }
                let name = if let Some(b) = before.strip_suffix(':') {
                    if b.ends_with(':') {
                        None // `std::collections::HashMap` path segment
                    } else {
                        trailing_ident(b)
                    }
                } else if let Some(b) = before.strip_suffix('=') {
                    let b = b.trim_end();
                    if b.ends_with(['=', '!', '<', '>', '+', '-', '*', '/', '&', '|']) {
                        None // comparison / compound assignment / match arm
                    } else {
                        trailing_ident(b)
                    }
                } else {
                    None
                };
                if let Some(n) = name {
                    if !out.contains(&n) {
                        out.push(n);
                    }
                }
            }
        }
    }
    out.sort();
    out
}

/// L006 hits on one code line: iteration over any of `bindings`.
fn hash_iteration_hit(code_line: &str, bindings: &[String]) -> bool {
    for b in bindings {
        for col in token_matches(code_line, b) {
            let rest = &code_line[col + b.len()..];
            if L006_SUFFIXES.iter().any(|s| rest.starts_with(s)) {
                return true;
            }
            // `for x in map` / `for x in &map` / `for x in &mut self.map`:
            // strip receiver path segments (`self.`, `state.inner.`),
            // reference sigils and `mut` back to the `in` keyword.
            let mut before = code_line[..col].trim_end();
            loop {
                let prev = before;
                if let Some(b2) = before.strip_suffix('.') {
                    before = b2.trim_end_matches(|c: char| c.is_alphanumeric() || c == '_');
                }
                before = before.trim_end_matches('&').trim_end();
                if let Some(b2) = before.strip_suffix("mut") {
                    if b2.ends_with([' ', '&']) || b2.is_empty() {
                        before = b2.trim_end();
                    }
                }
                if before == prev {
                    break;
                }
            }
            if before.ends_with("in")
                && before[..before.len() - 2]
                    .chars()
                    .next_back()
                    .is_none_or(|c| !(c.is_alphanumeric() || c == '_'))
            {
                return true;
            }
        }
    }
    false
}

/// Checks whether line `line` of `view` is justified by a `SAFETY:` comment:
/// on the same line, or in the run of comment-only lines directly above.
fn has_safety_comment(view: &SourceView, line: usize) -> bool {
    if view.comments_on(line).any(|c| c.contains("SAFETY:")) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 && view.line_is_comment_only(l) {
        if view.comments_on(l).any(|c| c.contains("SAFETY:")) {
            return true;
        }
        l -= 1;
    }
    false
}

/// One `unsafe` site, for the inventory report.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub file: String,
    pub line: usize,
    /// `"block"`, `"impl"`, `"fn"` or `"trait"`.
    pub kind: &'static str,
    /// Whether a `SAFETY:` justification was found next to it.
    pub justified: bool,
    /// The source line, trimmed.
    pub excerpt: String,
}

/// The result of scanning one file (or a whole workspace, merged).
#[derive(Debug, Default)]
pub struct FileScan {
    pub findings: Vec<Finding>,
    pub unsafe_sites: Vec<UnsafeSite>,
    pub stale_waivers: Vec<StaleWaiver>,
}

/// Scans one file's source. `file` is the workspace-relative path with
/// forward slashes; `scope` carries the reachability-derived line ranges
/// the op-path rules apply to.
pub fn scan_source(file: &str, source: &str, scope: &FileScope) -> FileScan {
    let view = SourceView::new(source);
    let test_ranges = cfg_test_ranges(&view.code);
    let loops = loop_ranges(&view.code);
    let bindings = hash_bindings(&view.code);
    let mut waivers = collect_waivers(&view);
    let src_lines: Vec<&str> = source.lines().collect();
    let excerpt = |line: usize| -> String {
        src_lines
            .get(line.saturating_sub(1))
            .map_or(String::new(), |l| l.trim().to_string())
    };
    let mut out = FileScan::default();
    let sync_module = in_sync_module(file);

    for (idx, code_line) in view.code.lines().enumerate() {
        let line = idx + 1;
        let tested = in_ranges(&test_ranges, line);
        let mut hit = |rule: RuleId, matched: bool, waivers: &mut Vec<WaiverSite>| {
            if matched && !apply_waivers(waivers, rule, line) {
                out.findings.push(Finding {
                    rule,
                    file: file.to_string(),
                    line,
                    excerpt: excerpt(line),
                });
            }
        };
        let needles_hit = |needles: &[&str]| {
            needles
                .iter()
                .any(|n| !token_matches(code_line, n).is_empty())
        };
        if !tested {
            if in_ranges(&scope.op_path, line) {
                hit(RuleId::L001, needles_hit(L001_NEEDLES), &mut waivers);
                hit(RuleId::L002, needles_hit(L002_NEEDLES), &mut waivers);
                hit(RuleId::L005, needles_hit(L005_NEEDLES), &mut waivers);
                hit(
                    RuleId::L006,
                    hash_iteration_hit(code_line, &bindings),
                    &mut waivers,
                );
            }
            if in_ranges(&scope.kernel, line) && in_ranges(&loops, line) {
                hit(RuleId::L007, needles_hit(L007_NEEDLES), &mut waivers);
            }
            if in_ranges(&scope.clock, line) {
                hit(RuleId::L008, needles_hit(L008_NEEDLES), &mut waivers);
            }
        }
        if !sync_module {
            hit(RuleId::L004, needles_hit(L004_NEEDLES), &mut waivers);
        }

        // L003 + inventory: classify each `unsafe` keyword.
        for col in token_matches(code_line, "unsafe") {
            let rest = code_line[col + "unsafe".len()..].trim_start();
            let kind = if rest.starts_with("impl") {
                "impl"
            } else if rest.starts_with("fn") {
                "fn"
            } else if rest.starts_with("trait") {
                "trait"
            } else if rest.starts_with('{') || rest.is_empty() {
                // `unsafe {` — possibly with the brace on the next line.
                "block"
            } else {
                // `unsafe extern`, attribute position, etc.; inventory as a
                // block-like site.
                "block"
            };
            let justified = has_safety_comment(&view, line);
            out.unsafe_sites.push(UnsafeSite {
                file: file.to_string(),
                line,
                kind,
                justified,
                excerpt: excerpt(line),
            });
            // Blocks and impls require the SAFETY comment (L003); `unsafe
            // fn` declares an obligation for *callers* and documents it in
            // its `# Safety` rustdoc section instead.
            let requires = matches!(kind, "block" | "impl" | "trait");
            if requires && !justified && !apply_waivers(&mut waivers, RuleId::L003, line) {
                out.findings.push(Finding {
                    rule: RuleId::L003,
                    file: file.to_string(),
                    line,
                    excerpt: excerpt(line),
                });
            }
        }
    }

    // Stale-waiver audit: every waiver must have matched a raw finding —
    // including waivers naming unknown rules, which can never match.
    for w in &waivers {
        if !w.used {
            out.stale_waivers.push(StaleWaiver {
                file: file.to_string(),
                line: w.line,
                rule: w.raw_rule.clone(),
            });
        }
    }
    out.findings.sort_by_key(|f| (f.line, f.rule));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const OP_FILE: &str = "crates/phylo-kernel/src/ops.rs";
    const OTHER_FILE: &str = "crates/phylo-tree/src/lib.rs";

    fn rules_fired(file: &str, src: &str) -> Vec<RuleId> {
        scan_source(file, src, &FileScope::everything())
            .findings
            .iter()
            .map(|f| f.rule)
            .collect()
    }

    fn rules_fired_unscoped(file: &str, src: &str) -> Vec<RuleId> {
        scan_source(file, src, &FileScope::default())
            .findings
            .iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn l001_fires_on_each_banned_construct() {
        for src in [
            "fn f() { panic!(\"x\"); }\n",
            "fn f() { x.unwrap(); }\n",
            "fn f() { x.expect(\"y\"); }\n",
            "fn f() { unreachable!(); }\n",
            "fn f() { todo!(); }\n",
        ] {
            assert_eq!(rules_fired(OP_FILE, src), vec![RuleId::L001], "src: {src}");
        }
    }

    #[test]
    fn op_path_rules_are_scoped_by_reachability() {
        // With an empty scope — the function is not reachable — nothing
        // fires, whatever the file is.
        assert!(rules_fired_unscoped(OP_FILE, "fn f() { x.unwrap(); }\n").is_empty());
        // With a scope covering only lines 1-2, line 4 stays clean.
        let src = "fn hot() {\n    x.unwrap();\n}\nfn cold() { y.unwrap(); }\n";
        let scope = FileScope {
            op_path: vec![(1, 3)],
            ..Default::default()
        };
        let findings = scan_source(OP_FILE, src, &scope).findings;
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn l001_ignores_cfg_test_and_comments_and_strings() {
        let src = "\
// a comment mentioning panic!(\"x\")
fn ok() { let s = \"unwrap()\"; }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); assert!(matches!(y, Err(_))); panic!(\"boom\"); }
}
";
        assert!(rules_fired(OP_FILE, src).is_empty());
    }

    #[test]
    fn l002_fires_on_debug_assert_family() {
        let src = "fn f() { debug_assert!(a); debug_assert_eq!(b, c); }\n";
        let fired = rules_fired(OP_FILE, src);
        assert_eq!(fired, vec![RuleId::L002]);
        // Plain assert! is allowed (construction-time invariants).
        assert!(rules_fired(OP_FILE, "fn f() { assert!(a); }\n").is_empty());
    }

    #[test]
    fn l003_requires_safety_comment() {
        let bad = "fn f() { unsafe { do_it() } }\n";
        assert_eq!(rules_fired_unscoped(OTHER_FILE, bad), vec![RuleId::L003]);
        let good =
            "fn f() {\n    // SAFETY: exclusive access proven above.\n    unsafe { do_it() }\n}\n";
        assert!(rules_fired_unscoped(OTHER_FILE, good).is_empty());
        let bad_impl = "unsafe impl Send for X {}\n";
        assert_eq!(
            rules_fired_unscoped(OTHER_FILE, bad_impl),
            vec![RuleId::L003]
        );
        // `unsafe fn` documents its contract in rustdoc, not a SAFETY line.
        assert!(rules_fired_unscoped(OTHER_FILE, "unsafe fn g() {}\n").is_empty());
    }

    #[test]
    fn l004_confines_atomics_to_sync_module() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        assert_eq!(rules_fired_unscoped(OTHER_FILE, src), vec![RuleId::L004]);
        assert!(rules_fired_unscoped("crates/phylo-telemetry/src/sync/atomic.rs", src).is_empty());
        // The facade path is fine anywhere.
        assert!(
            rules_fired_unscoped(OTHER_FILE, "use crate::sync::atomic::AtomicU64;\n").is_empty()
        );
    }

    #[test]
    fn l005_blocks_locks_in_op_path() {
        for src in [
            "struct S { m: Mutex<u32> }\n",
            "struct S { m: RwLock<u32> }\n",
            "fn f(m: &std::sync::Mutex<u32>) { let _g = m.lock(); }\n",
        ] {
            assert!(
                rules_fired(OP_FILE, src).contains(&RuleId::L005),
                "src: {src}"
            );
        }
        assert!(rules_fired_unscoped(OTHER_FILE, "struct S { m: Mutex<u32> }\n").is_empty());
    }

    #[test]
    fn l006_flags_hash_iteration_in_op_scope() {
        // Seeded violation: every banned iteration form fires.
        for stmt in [
            "for (k, v) in &tenants { use_it(k, v); }",
            "for k in tenants.keys() { use_it(k); }",
            "let total: u64 = tenants.values().sum();",
            "tenants.iter().for_each(|x| use_it(x));",
            "for (k, v) in tenants.drain() { use_it(k, v); }",
        ] {
            let src = format!("struct S {{ tenants: HashMap<u64, usize> }}\nfn f() {{ {stmt} }}\n");
            assert_eq!(
                rules_fired(OP_FILE, &src),
                vec![RuleId::L006],
                "stmt: {stmt}"
            );
        }
        // Point lookups are fine; BTreeMap iteration is fine.
        for stmt in [
            "let v = tenants.get(&1);",
            "tenants.insert(1, 2);",
            "for (k, v) in &sorted { use_it(k, v); }",
        ] {
            let src = format!(
                "struct S {{ tenants: HashMap<u64, usize>, sorted: BTreeMap<u64, usize> }}\nfn f() {{ {stmt} }}\n"
            );
            assert!(rules_fired(OP_FILE, &src).is_empty(), "stmt: {stmt}");
        }
    }

    #[test]
    fn l006_sees_through_field_access_receivers() {
        let src = "\
struct S { tenants: HashMap<u64, usize> }
impl S {
    fn f(&self) {
        for (k, v) in &self.tenants { use_it(k, v); }
    }
    fn g(&mut self) {
        self.tenants.insert(1, 2);
    }
}
";
        let findings = scan_source(OP_FILE, src, &FileScope::everything()).findings;
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RuleId::L006);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn prose_mentioning_the_waiver_syntax_is_not_a_waiver() {
        // Docs explaining `// lint:allow(L001): reason` must neither
        // suppress findings nor count as stale.
        let src = "\
/// Findings can be waived with `// lint:allow(L001): reason`.
fn f() { x.unwrap(); }
";
        let scan = scan_source(OP_FILE, src, &FileScope::everything());
        assert_eq!(scan.findings.len(), 1);
        assert!(scan.stale_waivers.is_empty());
    }

    #[test]
    fn chained_waivers_in_one_comment_each_apply() {
        let src = "\
fn f() {
    // lint:allow(L001): poisoning is fatal by design lint:allow(L005): held one line
    let g = m.lock().unwrap();
}
";
        let scan = scan_source(OP_FILE, src, &FileScope::everything());
        assert!(scan.findings.is_empty(), "{:?}", scan.findings);
        assert!(scan.stale_waivers.is_empty());
    }

    #[test]
    fn l006_binding_detection_covers_let_field_and_param() {
        let code = "\
struct S { tenants: HashMap<u64, usize> }
fn f(lanes: &HashSet<u64>) {
    let mut local = HashMap::new();
}
use std::collections::HashMap;
";
        let b = hash_bindings(code);
        assert_eq!(b, vec!["lanes", "local", "tenants"]);
    }

    #[test]
    fn l007_flags_allocation_only_inside_loops() {
        let src = "\
fn step() {
    let mut buf = Vec::with_capacity(n);
    for p in 0..n {
        let tmp = slice.to_vec();
    }
}
";
        let findings = scan_source(OP_FILE, src, &FileScope::everything()).findings;
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RuleId::L007);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn l007_each_allocation_form_fires_in_a_loop() {
        for stmt in [
            "let v = Vec::new();",
            "let v = vec![0.0; 4];",
            "let v = x.to_vec();",
            "let v: Vec<_> = it.collect();",
            "let s = format!(\"{p}\");",
            "let b = Box::new(p);",
            "let c = buf.clone();",
            "out.push(p);",
        ] {
            let src = format!("fn step() {{\n    loop {{\n        {stmt}\n    }}\n}}\n");
            assert_eq!(
                rules_fired(OP_FILE, &src),
                vec![RuleId::L007],
                "stmt: {stmt}"
            );
        }
    }

    #[test]
    fn l007_is_scoped_to_kernel_ranges() {
        let src = "fn step() { for p in 0..n { out.push(p); } }\n";
        let scope = FileScope {
            op_path: vec![(1, usize::MAX)],
            kernel: vec![],
            clock: vec![(1, usize::MAX)],
        };
        assert!(scan_source(OP_FILE, src, &scope).findings.is_empty());
    }

    #[test]
    fn l008_flags_clock_and_rng() {
        for stmt in [
            "let t = Instant::now();",
            "let t = SystemTime::now();",
            "let mut rng = thread_rng();",
        ] {
            let src = format!("fn f() {{ {stmt} }}\n");
            assert_eq!(
                rules_fired(OP_FILE, &src),
                vec![RuleId::L008],
                "stmt: {stmt}"
            );
        }
        // The telemetry facade's scope has empty `clock` ranges, so the
        // same line is clean there.
        let scope = FileScope {
            op_path: vec![(1, usize::MAX)],
            kernel: vec![],
            clock: vec![],
        };
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(
            scan_source("crates/phylo-telemetry/src/timing.rs", src, &scope)
                .findings
                .is_empty()
        );
    }

    #[test]
    fn loop_ranges_skip_impl_for_and_hrtb() {
        let code = "\
impl Executor for A {
    fn f<F: for<'a> Fn(&'a u8)>(&self) {
        for i in 0..3 {
            work(i);
        }
    }
}
";
        let ranges = loop_ranges(code);
        assert_eq!(ranges, vec![(3, 5)]);
    }

    #[test]
    fn waiver_with_reason_suppresses_waiver_without_does_not() {
        let with = "fn f() {\n    // lint:allow(L001): test-only fault injection hook\n    panic!(\"x\");\n}\n";
        assert!(rules_fired(OP_FILE, with).is_empty());
        let without = "fn f() {\n    // lint:allow(L001):\n    panic!(\"x\");\n}\n";
        assert_eq!(rules_fired(OP_FILE, without), vec![RuleId::L001]);
        let wrong_rule =
            "fn f() {\n    // lint:allow(L002): mismatched rule\n    panic!(\"x\");\n}\n";
        assert_eq!(rules_fired(OP_FILE, wrong_rule), vec![RuleId::L001]);
    }

    #[test]
    fn stale_waivers_are_reported() {
        // A waiver matching a live finding is not stale...
        let live = "fn f() {\n    // lint:allow(L001): known hook\n    panic!(\"x\");\n}\n";
        let scan = scan_source(OP_FILE, live, &FileScope::everything());
        assert!(scan.findings.is_empty());
        assert!(scan.stale_waivers.is_empty());
        // ...a waiver matching nothing is.
        let stale = "fn f() {\n    // lint:allow(L001): the panic was removed\n    ok();\n}\n";
        let scan = scan_source(OP_FILE, stale, &FileScope::everything());
        assert_eq!(scan.stale_waivers.len(), 1);
        assert_eq!(scan.stale_waivers[0].line, 2);
        assert_eq!(scan.stale_waivers[0].rule, "L001");
        // A waiver out of scope (unreachable fn) is stale too.
        let scan = scan_source(OP_FILE, live, &FileScope::default());
        assert_eq!(scan.stale_waivers.len(), 1);
        // A waiver naming an unknown rule can never match.
        let unknown = "// lint:allow(L999): no such rule\nfn f() {}\n";
        let scan = scan_source(OP_FILE, unknown, &FileScope::everything());
        assert_eq!(scan.stale_waivers.len(), 1);
        assert_eq!(scan.stale_waivers[0].rule, "L999");
    }

    #[test]
    fn unsafe_inventory_collects_all_sites() {
        let src = "\
// SAFETY: fine.
unsafe impl Send for X {}
unsafe fn g() {}
fn f() { unsafe { h() } }
";
        let scan = scan_source(OTHER_FILE, src, &FileScope::default());
        let kinds: Vec<&str> = scan.unsafe_sites.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec!["impl", "fn", "block"]);
        assert!(scan.unsafe_sites[0].justified);
        assert!(!scan.unsafe_sites[2].justified);
    }
}
