//! The scanner: applies the rules of [`crate::rules`] to source files,
//! honoring `#[cfg(test)]` exclusions and inline waivers.

use crate::lexer::{token_matches, SourceView};
use crate::rules::{Finding, RuleId};

/// Files making up the kernel *op-execution path*: the code that runs once
/// per op dispatch on the master or inside a worker loop. Rules L001, L002
/// and L005 apply here (L003/L004 apply workspace-wide).
pub const OP_PATH_FILES: &[&str] = &[
    "crates/phylo-kernel/src/ops.rs",
    "crates/phylo-kernel/src/blocked.rs",
    "crates/phylo-kernel/src/slice.rs",
    "crates/phylo-kernel/src/tables.rs",
    "crates/phylo-kernel/src/executor.rs",
    "crates/phylo-kernel/src/engine.rs",
    "crates/phylo-parallel/src/threaded.rs",
    "crates/phylo-parallel/src/rayon_exec.rs",
    "crates/phylo-parallel/src/tracing.rs",
    "crates/phylo-serve/src/pool.rs",
    "crates/phylo-serve/src/dispatch.rs",
    "crates/phylo-serve/src/session.rs",
];

const L001_NEEDLES: &[&str] = &["panic!", ".unwrap()", ".expect(", "unreachable!", "todo!"];
const L002_NEEDLES: &[&str] = &["debug_assert!", "debug_assert_eq!", "debug_assert_ne!"];
const L004_NEEDLES: &[&str] = &["std::sync::atomic", "core::sync::atomic"];
const L005_NEEDLES: &[&str] = &["Mutex<", "RwLock<", ".lock()"];

/// Whether `file` (workspace-relative, forward slashes) is in the per-op
/// scope of L001/L002/L005.
pub fn in_op_path(file: &str) -> bool {
    OP_PATH_FILES.contains(&file)
}

/// Whether `file` may mention `std::sync::atomic` (L004): anything under a
/// `sync` module of its crate.
pub fn in_sync_module(file: &str) -> bool {
    file.contains("/src/sync/") || file.ends_with("/src/sync.rs")
}

/// An active waiver: `// lint:allow(L001): reason` on the finding's line or
/// the line directly above. A waiver with an empty reason is ignored — the
/// justification is the point.
fn waived(view: &SourceView, rule: RuleId, line: usize) -> bool {
    let lines = [line.saturating_sub(1), line];
    let tag = format!("lint:allow({})", rule.as_str());
    for l in lines {
        if l == 0 {
            continue;
        }
        for comment in view.comments_on(l) {
            if let Some(pos) = comment.find(&tag) {
                let rest = &comment[pos + tag.len()..];
                if let Some(reason) = rest.trim_start().strip_prefix(':') {
                    if !reason.trim().is_empty() {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items.
fn cfg_test_ranges(code: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut from = 0usize;
    let flat = code;
    while let Some(pos) = flat[from..].find("#[cfg(test)]") {
        let start = from + pos;
        let start_line = flat[..start].matches('\n').count() + 1;
        // Find the item body: the first `{` after the attribute (brace-match
        // to its close), or a `;` if it comes first (attribute on a
        // braceless item).
        let mut j = start + "#[cfg(test)]".len();
        let mut end = flat.len();
        let body = flat[j..].find(['{', ';']).map(|o| j + o);
        if let Some(open) = body {
            if flat[open..].starts_with(';') {
                end = open;
            } else {
                let mut depth = 0usize;
                j = open;
                while j < flat.len() {
                    match flat.as_bytes()[j] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                end = j;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        let end_line = flat[..end].matches('\n').count() + 1;
        ranges.push((start_line, end_line));
        from = start + 1;
    }
    ranges
}

fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Checks whether line `line` of `view` is justified by a `SAFETY:` comment:
/// on the same line, or in the run of comment-only lines directly above.
fn has_safety_comment(view: &SourceView, line: usize) -> bool {
    if view.comments_on(line).any(|c| c.contains("SAFETY:")) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 && view.line_is_comment_only(l) {
        if view.comments_on(l).any(|c| c.contains("SAFETY:")) {
            return true;
        }
        l -= 1;
    }
    false
}

/// One `unsafe` site, for the inventory report.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub file: String,
    pub line: usize,
    /// `"block"`, `"impl"`, `"fn"` or `"trait"`.
    pub kind: &'static str,
    /// Whether a `SAFETY:` justification was found next to it.
    pub justified: bool,
    /// The source line, trimmed.
    pub excerpt: String,
}

/// The result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    pub findings: Vec<Finding>,
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Scans one file's source. `file` is the workspace-relative path with
/// forward slashes; it selects which rules apply.
pub fn scan_source(file: &str, source: &str) -> FileScan {
    let view = SourceView::new(source);
    let test_ranges = cfg_test_ranges(&view.code);
    let src_lines: Vec<&str> = source.lines().collect();
    let excerpt = |line: usize| -> String {
        src_lines
            .get(line.saturating_sub(1))
            .map_or(String::new(), |l| l.trim().to_string())
    };
    let mut out = FileScan::default();
    let op_path = in_op_path(file);
    let sync_module = in_sync_module(file);

    for (idx, code_line) in view.code.lines().enumerate() {
        let line = idx + 1;
        let tested = in_ranges(&test_ranges, line);
        let hit = |rule: RuleId, needles: &[&str], out: &mut FileScan| {
            if needles
                .iter()
                .any(|n| !token_matches(code_line, n).is_empty())
                && !waived(&view, rule, line)
            {
                out.findings.push(Finding {
                    rule,
                    file: file.to_string(),
                    line,
                    excerpt: excerpt(line),
                });
            }
        };
        if op_path && !tested {
            hit(RuleId::L001, L001_NEEDLES, &mut out);
            hit(RuleId::L002, L002_NEEDLES, &mut out);
            hit(RuleId::L005, L005_NEEDLES, &mut out);
        }
        if !sync_module {
            hit(RuleId::L004, L004_NEEDLES, &mut out);
        }

        // L003 + inventory: classify each `unsafe` keyword.
        for col in token_matches(code_line, "unsafe") {
            let rest = code_line[col + "unsafe".len()..].trim_start();
            let kind = if rest.starts_with("impl") {
                "impl"
            } else if rest.starts_with("fn") {
                "fn"
            } else if rest.starts_with("trait") {
                "trait"
            } else if rest.starts_with('{') || rest.is_empty() {
                // `unsafe {` — possibly with the brace on the next line.
                "block"
            } else {
                // `unsafe extern`, attribute position, etc.; inventory as a
                // block-like site.
                "block"
            };
            let justified = has_safety_comment(&view, line);
            out.unsafe_sites.push(UnsafeSite {
                file: file.to_string(),
                line,
                kind,
                justified,
                excerpt: excerpt(line),
            });
            // Blocks and impls require the SAFETY comment (L003); `unsafe
            // fn` declares an obligation for *callers* and documents it in
            // its `# Safety` rustdoc section instead.
            let requires = matches!(kind, "block" | "impl" | "trait");
            if requires && !justified && !waived(&view, RuleId::L003, line) {
                out.findings.push(Finding {
                    rule: RuleId::L003,
                    file: file.to_string(),
                    line,
                    excerpt: excerpt(line),
                });
            }
        }
    }
    out.findings.sort_by_key(|f| (f.line, f.rule));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const OP_FILE: &str = "crates/phylo-kernel/src/ops.rs";
    const OTHER_FILE: &str = "crates/phylo-tree/src/lib.rs";

    fn rules_fired(file: &str, src: &str) -> Vec<RuleId> {
        scan_source(file, src)
            .findings
            .iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn l001_fires_on_each_banned_construct() {
        for src in [
            "fn f() { panic!(\"x\"); }\n",
            "fn f() { x.unwrap(); }\n",
            "fn f() { x.expect(\"y\"); }\n",
            "fn f() { unreachable!(); }\n",
            "fn f() { todo!(); }\n",
        ] {
            assert_eq!(rules_fired(OP_FILE, src), vec![RuleId::L001], "src: {src}");
        }
    }

    #[test]
    fn l001_is_scoped_to_op_path_files() {
        assert!(rules_fired(OTHER_FILE, "fn f() { x.unwrap(); }\n").is_empty());
    }

    #[test]
    fn l001_ignores_cfg_test_and_comments_and_strings() {
        let src = "\
// a comment mentioning panic!(\"x\")
fn ok() { let s = \"unwrap()\"; }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); assert!(matches!(y, Err(_))); panic!(\"boom\"); }
}
";
        assert!(rules_fired(OP_FILE, src).is_empty());
    }

    #[test]
    fn l002_fires_on_debug_assert_family() {
        let src = "fn f() { debug_assert!(a); debug_assert_eq!(b, c); }\n";
        let fired = rules_fired(OP_FILE, src);
        assert_eq!(fired, vec![RuleId::L002]);
        // Plain assert! is allowed (construction-time invariants).
        assert!(rules_fired(OP_FILE, "fn f() { assert!(a); }\n").is_empty());
    }

    #[test]
    fn l003_requires_safety_comment() {
        let bad = "fn f() { unsafe { do_it() } }\n";
        assert_eq!(rules_fired(OTHER_FILE, bad), vec![RuleId::L003]);
        let good =
            "fn f() {\n    // SAFETY: exclusive access proven above.\n    unsafe { do_it() }\n}\n";
        assert!(rules_fired(OTHER_FILE, good).is_empty());
        let bad_impl = "unsafe impl Send for X {}\n";
        assert_eq!(rules_fired(OTHER_FILE, bad_impl), vec![RuleId::L003]);
        // `unsafe fn` documents its contract in rustdoc, not a SAFETY line.
        assert!(rules_fired(OTHER_FILE, "unsafe fn g() {}\n").is_empty());
    }

    #[test]
    fn l003_multi_line_safety_justification() {
        let src = "\
fn f() {
    // SAFETY: a long argument that
    // spans several comment lines.
    unsafe { do_it() }
}
";
        assert!(rules_fired(OTHER_FILE, src).is_empty());
    }

    #[test]
    fn l004_confines_atomics_to_sync_module() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        assert_eq!(rules_fired(OTHER_FILE, src), vec![RuleId::L004]);
        assert!(rules_fired("crates/phylo-telemetry/src/sync/atomic.rs", src).is_empty());
        // The facade path is fine anywhere.
        assert!(rules_fired(OTHER_FILE, "use crate::sync::atomic::AtomicU64;\n").is_empty());
    }

    #[test]
    fn l005_blocks_locks_in_op_path() {
        for src in [
            "struct S { m: Mutex<u32> }\n",
            "struct S { m: RwLock<u32> }\n",
            "fn f(m: &std::sync::Mutex<u32>) { let _g = m.lock(); }\n",
        ] {
            assert!(
                rules_fired(OP_FILE, src).contains(&RuleId::L005),
                "src: {src}"
            );
        }
        assert!(rules_fired(OTHER_FILE, "struct S { m: Mutex<u32> }\n").is_empty());
    }

    #[test]
    fn waiver_with_reason_suppresses_waiver_without_does_not() {
        let with = "fn f() {\n    // lint:allow(L001): test-only fault injection hook\n    panic!(\"x\");\n}\n";
        assert!(rules_fired(OP_FILE, with).is_empty());
        let without = "fn f() {\n    // lint:allow(L001):\n    panic!(\"x\");\n}\n";
        assert_eq!(rules_fired(OP_FILE, without), vec![RuleId::L001]);
        let wrong_rule =
            "fn f() {\n    // lint:allow(L002): mismatched rule\n    panic!(\"x\");\n}\n";
        assert_eq!(rules_fired(OP_FILE, wrong_rule), vec![RuleId::L001]);
    }

    #[test]
    fn unsafe_inventory_collects_all_sites() {
        let src = "\
// SAFETY: fine.
unsafe impl Send for X {}
unsafe fn g() {}
fn f() { unsafe { h() } }
";
        let scan = scan_source(OTHER_FILE, src);
        let kinds: Vec<&str> = scan.unsafe_sites.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec!["impl", "fn", "block"]);
        assert!(scan.unsafe_sites[0].justified);
        assert!(!scan.unsafe_sites[2].justified);
    }
}
