//! Workspace-local name resolution for call sites.
//!
//! The call graph has no type information, so resolution is *conservative*:
//! every candidate that could plausibly be the callee becomes an edge. An
//! over-approximated edge can only widen the lint scope (a false finding
//! someone reviews), never narrow it (a real panic the linter misses) — the
//! safe direction for an invariant checker.
//!
//! The rules, in order:
//!
//! - **Free calls** `name(..)` resolve to free functions of that name and
//!   arity — preferring the caller's file, then the caller's crate, then the
//!   whole workspace. The narrowing matters for deliberately shadowed names
//!   (`newview_step` exists in both the scalar and blocked kernels).
//! - **Qualified calls** `Type::name(..)` resolve to inherent/trait methods
//!   of every workspace type named `Type` (types are not deduplicated by
//!   crate — over-approximation again). When `Type` is a *trait*, the call
//!   fans out to that method in **every** impl of the trait, because the
//!   static view cannot know the dynamic receiver. UFCS arities
//!   (`Type::method(&recv, x)`) are accepted. A lowercase qualifier is a
//!   module path segment, so the call falls back to free-fn resolution.
//! - **Method calls** `recv.name(..)` resolve to every workspace method of
//!   that name and arity that takes `self` — again a deliberate fan-out.
//!
//! Calls matching nothing (std/vendored callees, tuple-struct constructor
//! noise) stay unresolved; the envelope reports the resolved/unresolved
//! split so resolution quality is itself drift-gated.

use std::collections::BTreeMap;

use crate::items::{CallKind, CallSite, FnItem};

/// Lookup index over the workspace's extracted items.
pub struct Index {
    /// Item indices by bare function name.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Names of `trait` declarations seen anywhere.
    traits: BTreeMap<String, ()>,
}

/// The crate-identifying prefix of a workspace-relative path
/// (`crates/phylo-kernel` — or `src` for the root package).
pub fn crate_of(file: &str) -> &str {
    match file.strip_prefix("crates/") {
        Some(rest) => {
            let end = rest.find('/').unwrap_or(rest.len());
            &file[..("crates/".len() + end)]
        }
        None => "src",
    }
}

impl Index {
    /// Builds the index. `#[cfg(test)]` items are excluded: test helpers
    /// must never become resolution targets of shipped code.
    pub fn build(items: &[FnItem]) -> Self {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut traits = BTreeMap::new();
        for (i, item) in items.iter().enumerate() {
            if item.in_test {
                continue;
            }
            by_name.entry(item.name.clone()).or_default().push(i);
            if item.is_trait_decl {
                if let Some(t) = &item.qualifier {
                    traits.insert(t.clone(), ());
                }
            }
            if let Some(t) = &item.trait_impl {
                traits.insert(t.clone(), ());
            }
        }
        Self { by_name, traits }
    }

    fn is_trait(&self, name: &str) -> bool {
        self.traits.contains_key(name)
    }

    /// All item indices the call could target. Empty = unresolved
    /// (external callee or constructor noise).
    pub fn resolve(&self, items: &[FnItem], caller: &FnItem, call: &CallSite) -> Vec<usize> {
        let Some(named) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        match &call.kind {
            CallKind::Free => self.resolve_free(items, caller, call, named),
            CallKind::Method => named
                .iter()
                .copied()
                .filter(|&i| {
                    let it = &items[i];
                    it.has_self && it.arity == call.arity
                })
                .collect(),
            CallKind::Qualified(q) => {
                let mut out: Vec<usize> = named
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let it = &items[i];
                        it.qualifier.as_deref() == Some(q.as_str()) && arity_ok(it, call)
                    })
                    .collect();
                if self.is_trait(q) {
                    // Trait-method fan-out: the dynamic receiver could be
                    // any impl of the trait.
                    for &i in named {
                        let it = &items[i];
                        if it.trait_impl.as_deref() == Some(q.as_str())
                            && arity_ok(it, call)
                            && !out.contains(&i)
                        {
                            out.push(i);
                        }
                    }
                }
                if out.is_empty() && q.chars().next().is_some_and(char::is_lowercase) {
                    // `module::free_fn(..)` — the qualifier names a module,
                    // not a type.
                    return self.resolve_free(items, caller, call, named);
                }
                out
            }
        }
    }

    fn resolve_free(
        &self,
        items: &[FnItem],
        caller: &FnItem,
        call: &CallSite,
        named: &[usize],
    ) -> Vec<usize> {
        let all: Vec<usize> = named
            .iter()
            .copied()
            .filter(|&i| {
                let it = &items[i];
                it.qualifier.is_none() && !it.has_self && it.arity == call.arity
            })
            .collect();
        // Same-file, then same-crate, then workspace-wide: the narrowest
        // non-empty tier wins, so same-name fns across crates don't inflate
        // the reachable set when the caller clearly means its local one.
        let same_file: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| items[i].file == caller.file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let caller_crate = crate_of(&caller.file);
        let same_crate: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| crate_of(&items[i].file) == caller_crate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        all
    }
}

/// Direct arity match, or the UFCS form where the receiver is passed
/// explicitly (`Type::method(&recv, x)`).
fn arity_ok(item: &FnItem, call: &CallSite) -> bool {
    call.arity == item.arity || (item.has_self && call.arity == item.arity + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::lexer::SourceView;
    use crate::scan::cfg_test_ranges;

    fn items_of(sources: &[(&str, &str)]) -> Vec<FnItem> {
        let mut out = Vec::new();
        for (file, src) in sources {
            let view = SourceView::new(src);
            let ranges = cfg_test_ranges(&view.code);
            out.extend(extract(file, &view, &ranges));
        }
        out
    }

    fn resolve_names(items: &[FnItem], caller: &str, nth_call: usize) -> Vec<String> {
        let index = Index::build(items);
        let c = items.iter().find(|f| f.name == caller).unwrap();
        let mut names: Vec<String> = index
            .resolve(items, c, &c.calls[nth_call])
            .into_iter()
            .map(|i| format!("{}#{}", items[i].file, items[i].qualified_name()))
            .collect();
        names.sort();
        names
    }

    #[test]
    fn trait_method_calls_fan_out_to_all_impls() {
        let items = items_of(&[(
            "crates/a/src/lib.rs",
            "\
trait Executor { fn execute(&mut self, op: usize) -> usize; }
struct A;
struct B;
impl Executor for A { fn execute(&mut self, op: usize) -> usize { op } }
impl Executor for B { fn execute(&mut self, op: usize) -> usize { op * 2 } }
fn driver(e: &mut dyn Executor) { e.execute(1); }
",
        )]);
        let got = resolve_names(&items, "driver", 0);
        // Method fan-out: trait decl + both impls match name+arity+self.
        assert_eq!(got.len(), 3, "{got:?}");
        assert!(got.iter().any(|n| n.ends_with("A::execute")));
        assert!(got.iter().any(|n| n.ends_with("B::execute")));
    }

    #[test]
    fn qualified_trait_call_reaches_every_impl() {
        let items = items_of(&[(
            "crates/a/src/lib.rs",
            "\
trait Run { fn go(&self); }
struct X;
impl Run for X { fn go(&self) {} }
fn f(x: &X) { Run::go(x); }
",
        )]);
        let got = resolve_names(&items, "f", 0);
        assert!(got.iter().any(|n| n.ends_with("X::go")), "{got:?}");
    }

    #[test]
    fn same_name_fns_prefer_the_callers_crate() {
        let items = items_of(&[
            (
                "crates/scalar/src/lib.rs",
                "pub fn newview_step(x: usize) -> usize { x }\nfn run(x: usize) { newview_step(x); }\n",
            ),
            (
                "crates/blocked/src/lib.rs",
                "pub fn newview_step(x: usize) -> usize { x * 2 }\n",
            ),
        ]);
        let got = resolve_names(&items, "run", 0);
        assert_eq!(got, vec!["crates/scalar/src/lib.rs#newview_step"]);
    }

    #[test]
    fn cross_crate_free_call_fans_out_when_no_local_candidate() {
        let items = items_of(&[
            (
                "crates/a/src/lib.rs",
                "pub fn shared(x: usize) -> usize { x }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn shared(x: usize) -> usize { x }\n",
            ),
            ("crates/c/src/lib.rs", "fn call(x: usize) { shared(x); }\n"),
        ]);
        let got = resolve_names(&items, "call", 0);
        assert_eq!(got.len(), 2, "{got:?}");
    }

    #[test]
    fn method_vs_field_ambiguity_does_not_resolve_to_non_self_fns() {
        // `s.helper(1)` is a method call; a free fn `helper` without self
        // must NOT become a target, and the closure-field invocation form
        // `(s.helper)(1)` produces no call site at all.
        let items = items_of(&[(
            "crates/a/src/lib.rs",
            "\
pub fn helper(x: usize) -> usize { x }
struct S { helper: fn(usize) -> usize }
impl S {
    fn direct(&self, x: usize) { (self.helper)(x); }
}
fn caller(s: &S) { s.helper(1); }
",
        )]);
        let index = Index::build(&items);
        let direct = items.iter().find(|f| f.name == "direct").unwrap();
        assert!(direct.calls.is_empty());
        let caller = items.iter().find(|f| f.name == "caller").unwrap();
        assert_eq!(caller.calls.len(), 1);
        let targets = index.resolve(&items, caller, &caller.calls[0]);
        assert!(
            targets.is_empty(),
            "free fn without self must not match a method call"
        );
    }

    #[test]
    fn raw_identifier_fns_resolve_like_plain_ones() {
        let items = items_of(&[(
            "crates/a/src/lib.rs",
            "fn r#loop(x: usize) -> usize { x }\nfn f(x: usize) { r#loop(x); }\n",
        )]);
        let got = resolve_names(&items, "f", 0);
        assert_eq!(got, vec!["crates/a/src/lib.rs#loop"]);
    }

    #[test]
    fn module_qualified_calls_fall_back_to_free_fns() {
        let items = items_of(&[
            (
                "crates/a/src/ops.rs",
                "pub fn newview(x: usize) -> usize { x }\n",
            ),
            (
                "crates/a/src/lib.rs",
                "fn f(x: usize) { ops::newview(x); }\n",
            ),
        ]);
        let got = resolve_names(&items, "f", 0);
        assert_eq!(got, vec!["crates/a/src/ops.rs#newview"]);
    }

    #[test]
    fn ufcs_arity_is_accepted() {
        let items = items_of(&[(
            "crates/a/src/lib.rs",
            "\
struct T;
impl T { fn m(&self, x: usize) -> usize { x } }
fn f(t: &T) { T::m(t, 1); }
",
        )]);
        let got = resolve_names(&items, "f", 0);
        assert_eq!(got, vec!["crates/a/src/lib.rs#T::m"]);
    }

    #[test]
    fn test_items_are_never_targets() {
        let items = items_of(&[(
            "crates/a/src/lib.rs",
            "\
fn f(x: usize) { helper(x); }
#[cfg(test)]
mod tests {
    fn helper(x: usize) -> usize { x }
}
",
        )]);
        let got = resolve_names(&items, "f", 0);
        assert!(got.is_empty());
    }

    #[test]
    fn crate_of_distinguishes_root_and_members() {
        assert_eq!(
            crate_of("crates/phylo-kernel/src/ops.rs"),
            "crates/phylo-kernel"
        );
        assert_eq!(crate_of("src/main.rs"), "src");
    }
}
