//! A comment/string-aware view of Rust source, built without a real parser.
//!
//! The linter's rules are token-level (`panic!`, `unsafe {`,
//! `std::sync::atomic`, ...), so the only parsing it needs is the part that
//! prevents false positives: knowing what is a comment and what is a string
//! literal. [`SourceView::new`] walks the source once with a small state
//! machine and produces a *code view* — the same text with every comment and
//! every string/char-literal body blanked to spaces, newlines preserved so
//! line numbers still line up — plus the comment text per line, which is
//! where `SAFETY:` justifications and `lint:allow` waivers live.

/// The blanked code view plus extracted comments of one source file.
#[derive(Debug)]
pub struct SourceView {
    /// Source text with comments and literal bodies replaced by spaces.
    /// Exactly as many lines as the input.
    pub code: String,
    /// Concatenated comment text per 1-based line number (both `//` and
    /// `/* */` forms; block comments contribute to every line they span).
    pub comments: Vec<(usize, String)>,
}

#[derive(PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl SourceView {
    /// Builds the view. Never fails: malformed source degrades to a view
    /// that is blanked conservatively (an unterminated string blanks to the
    /// end of file), which can only hide findings in code that would not
    /// compile anyway.
    pub fn new(source: &str) -> Self {
        let bytes: Vec<char> = source.chars().collect();
        let mut code = String::with_capacity(source.len());
        let mut comments: Vec<(usize, String)> = Vec::new();
        let mut comment_buf = String::new();
        let mut line = 1usize;
        let mut mode = Mode::Code;
        let mut i = 0usize;

        let flush_comment = |comments: &mut Vec<(usize, String)>, buf: &mut String, line: usize| {
            if !buf.is_empty() {
                comments.push((line, std::mem::take(buf)));
            }
        };

        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        mode = Mode::LineComment;
                        code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        mode = Mode::Str;
                        code.push(' ');
                    }
                    'r' | 'b' => {
                        // Possible raw/byte string: r"", r#""#, br#""#, b"".
                        let mut j = i + 1;
                        if c == 'b' && bytes.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let prev_ident =
                            i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_');
                        if !prev_ident && bytes.get(j) == Some(&'"') {
                            // Confirmed literal prefix: blank it through the
                            // opening quote and enter raw-string mode.
                            for _ in i..=j {
                                code.push(' ');
                            }
                            i = j + 1;
                            mode = Mode::RawStr(hashes);
                            continue;
                        }
                        code.push(c);
                    }
                    '\'' => {
                        // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                        let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                            && bytes.get(i + 2) != Some(&'\'');
                        if is_lifetime {
                            code.push(c);
                        } else {
                            mode = Mode::Char;
                            code.push(' ');
                        }
                    }
                    '\n' => {
                        code.push('\n');
                        line += 1;
                    }
                    _ => code.push(c),
                },
                Mode::LineComment => {
                    if c == '\n' {
                        flush_comment(&mut comments, &mut comment_buf, line);
                        code.push('\n');
                        line += 1;
                        mode = Mode::Code;
                    } else {
                        comment_buf.push(c);
                        code.push(' ');
                    }
                }
                Mode::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        code.push_str("  ");
                        i += 2;
                        if depth == 1 {
                            flush_comment(&mut comments, &mut comment_buf, line);
                            mode = Mode::Code;
                        } else {
                            mode = Mode::BlockComment(depth - 1);
                        }
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        code.push_str("  ");
                        i += 2;
                        mode = Mode::BlockComment(depth + 1);
                        continue;
                    }
                    if c == '\n' {
                        flush_comment(&mut comments, &mut comment_buf, line);
                        code.push('\n');
                        line += 1;
                    } else {
                        comment_buf.push(c);
                        code.push(' ');
                    }
                }
                Mode::Str => match c {
                    '\\' => {
                        // Keep an escaped (line-continuation) newline so
                        // line numbers stay aligned.
                        if next == Some('\n') {
                            code.push_str(" \n");
                            line += 1;
                        } else {
                            code.push_str("  ");
                        }
                        i += 2;
                        continue;
                    }
                    '"' => {
                        code.push(' ');
                        mode = Mode::Code;
                    }
                    '\n' => {
                        code.push('\n');
                        line += 1;
                    }
                    _ => code.push(' '),
                },
                Mode::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if bytes.get(i + 1 + k as usize) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for _ in 0..=hashes {
                                code.push(' ');
                            }
                            i += 1 + hashes as usize;
                            mode = Mode::Code;
                            continue;
                        }
                    }
                    if c == '\n' {
                        code.push('\n');
                        line += 1;
                    } else {
                        code.push(' ');
                    }
                }
                Mode::Char => match c {
                    '\\' => {
                        code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '\'' => {
                        code.push(' ');
                        mode = Mode::Code;
                    }
                    '\n' => {
                        // Not actually a char literal (e.g. `'a` pattern
                        // binding edge case); bail back to code mode.
                        code.push('\n');
                        line += 1;
                        mode = Mode::Code;
                    }
                    _ => code.push(' '),
                },
            }
            i += 1;
        }
        flush_comment(&mut comments, &mut comment_buf, line);
        Self { code, comments }
    }

    /// All comment text attached to `line` (1-based).
    pub fn comments_on(&self, line: usize) -> impl Iterator<Item = &str> {
        self.comments
            .iter()
            .filter(move |(l, _)| *l == line)
            .map(|(_, t)| t.as_str())
    }

    /// Whether `line` consists only of comments and whitespace in the code
    /// view (used to walk upward through a `// SAFETY:` justification).
    pub fn line_is_comment_only(&self, line: usize) -> bool {
        let has_comment = self.comments.iter().any(|(l, _)| *l == line);
        let code_blank = self
            .code
            .lines()
            .nth(line.saturating_sub(1))
            .is_none_or(|l| l.trim().is_empty());
        has_comment && code_blank
    }
}

/// Finds `needle` in `haystack` at token boundaries: the char before a match
/// must not be part of an identifier (so `panic!` does not match inside
/// `worker_panic!`). Returns 0-based column offsets of every match.
pub fn token_matches(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    // A needle that starts (ends) with an identifier char must not be the
    // suffix (prefix) of a longer identifier: `panic!` can be, `.unwrap()`
    // can't; `unsafe` must not match inside `unsafe_sites`.
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let guard_start = needle.chars().next().is_some_and(ident);
    let guard_end = needle.chars().next_back().is_some_and(ident);
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let start_ok =
            !guard_start || at == 0 || haystack[..at].chars().next_back().is_none_or(|c| !ident(c));
        let end_ok = !guard_end
            || haystack[at + needle.len()..]
                .chars()
                .next()
                .is_none_or(|c| !ident(c));
        if start_ok && end_ok {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_and_collected() {
        let v = SourceView::new("let x = 1; // panic!(\"no\")\n/* unwrap() */ let y = 2;\n");
        assert!(!v.code.contains("panic!"));
        assert!(!v.code.contains("unwrap"));
        assert!(v.code.contains("let x = 1;"));
        assert!(v.code.contains("let y = 2;"));
        assert_eq!(v.comments.len(), 2);
        assert!(v.comments[0].1.contains("panic!"));
        assert_eq!(v.comments[0].0, 1);
        assert_eq!(v.comments[1].0, 2);
    }

    #[test]
    fn strings_are_blanked_but_lines_survive() {
        let v = SourceView::new("let s = \"panic! and\nunwrap()\";\nlet t = 3;\n");
        assert!(!v.code.contains("panic!"));
        assert!(!v.code.contains("unwrap"));
        assert_eq!(v.code.lines().count(), 3);
        assert!(v.code.lines().nth(2).unwrap().contains("let t = 3;"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let v = SourceView::new("let s = r#\"todo!() \"quoted\" still\"#; let u = 9;\n");
        assert!(!v.code.contains("todo!"));
        assert!(v.code.contains("let u = 9;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let v = SourceView::new("fn f<'a>(x: &'a str) -> char { '\\'' }\nlet c = 'u';\n");
        assert!(v.code.contains("fn f<'a>(x: &'a str)"));
        assert!(!v.code.lines().nth(1).unwrap().contains('u'));
    }

    #[test]
    fn nested_block_comments() {
        let v = SourceView::new("/* outer /* inner unwrap() */ still */ let z = 1;\n");
        assert!(!v.code.contains("unwrap"));
        assert!(v.code.contains("let z = 1;"));
    }

    #[test]
    fn token_boundaries_respected() {
        assert_eq!(
            token_matches("worker_panic!(x)", "panic!"),
            Vec::<usize>::new()
        );
        assert_eq!(token_matches("panic!(x)", "panic!"), vec![0]);
        assert_eq!(token_matches("  panic!(panic!)", "panic!"), vec![2, 9]);
    }

    #[test]
    fn comment_only_lines() {
        let v = SourceView::new("// SAFETY: fine\nlet x = 1; // trailing\n");
        assert!(v.line_is_comment_only(1));
        assert!(!v.line_is_comment_only(2));
    }
}
