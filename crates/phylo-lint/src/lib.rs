//! Workspace invariant linter for the phylogenetic-likelihood workspace.
//!
//! `phylo-lint` is a dependency-free static-analysis tool (its own
//! comment/string-aware lexer, no `syn`, no `rustc` internals) that enforces
//! the invariants the likelihood kernel's error-handling and concurrency
//! design rest on. It runs in CI as `cargo run -p phylo-lint -- --check` and
//! emits its result as a `plf-bench/v1` [`BenchEnvelope`] JSON document like
//! every other gate in the workspace.
//!
//! # Scoping: call-graph reachability (since PR 10)
//!
//! The op-path rules no longer apply to a hardcoded file list. The linter
//! extracts every `fn`/`impl`/`trait` item across all 15 crates
//! ([`items`]), resolves call sites conservatively ([`resolve`]: free calls
//! by name+arity with file/crate narrowing, `Type::method` by qualifier,
//! trait-method calls fanned out to **every** workspace impl), and computes
//! the set of functions transitively reachable from the declared op-path
//! entry points ([`callgraph::ENTRY_POINTS`]: `execute_on_worker`, the
//! scalar/blocked kernel steps, the engine `try_*` API, all four executor
//! backends, and the `phylo-serve` dispatcher/pool hot loops). The old
//! `OP_PATH_FILES` list survives only as a must-be-subset sanity check, and
//! the envelope drift-gates the entry-point count, the reachable-fn count
//! and the resolution quality so the analyzed scope can never silently
//! shrink.
//!
//! # Rules (stable IDs — public API, never renumbered)
//!
//! | ID | Invariant |
//! |----|-----------|
//! | **L001** | No `panic!` / `.unwrap()` / `.expect(` / `unreachable!` / `todo!` in functions reachable from the op-path entry points (outside `#[cfg(test)]`). Misuse surfaces as typed `OpError` / `KernelError`. |
//! | **L002** | No `debug_assert!` family guarding shape/soundness invariants in reachable op-path code — release builds must check too. |
//! | **L003** | Every `unsafe` block / `unsafe impl` is immediately preceded by a `// SAFETY:` comment; all sites are listed in the committed `UNSAFE_INVENTORY.md`. |
//! | **L004** | `std::sync::atomic` is confined to each crate's designated `sync` module. |
//! | **L005** | No `Mutex` / `RwLock` acquisition in reachable op-path code. |
//! | **L006** | No `HashMap`/`HashSet` iteration in reachable op-path code — hash order silently breaks the bit-identical lnL guarantee. |
//! | **L007** | No heap allocation inside loop bodies of reachable kernel functions (`ops.rs`, `blocked.rs`, `slice.rs`). |
//! | **L008** | No wall-clock or RNG in reachable op-path code outside the telemetry timing facade. |
//!
//! Findings can be waived inline with `// lint:allow(L001): reason` (the
//! reason is mandatory) trailing the offending line or in the comment block
//! directly above it (chains may wrap onto continuation lines). A waiver
//! matching **no current finding is itself an error** (the stale-waiver
//! audit), so waivers can't rot after refactors. A committed
//! `lint-baseline.txt` can grandfather findings — the repo keeps it empty.
//!
//! [`BenchEnvelope`]: phylo_telemetry::BenchEnvelope

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod inventory;
pub mod items;
pub mod lexer;
pub mod resolve;
pub mod rules;
pub mod scan;
pub mod workspace;

pub use callgraph::{Analysis, EntryPoint, ReachMetrics, ENTRY_POINTS};
pub use rules::{Finding, RuleId, ALL_RULES};
pub use scan::{scan_source, FileScan, FileScope, StaleWaiver, UnsafeSite, OP_PATH_FILES};
pub use workspace::{analyze_workspace, find_root, Baseline, WorkspaceAnalysis};

use phylo_telemetry::BenchEnvelope;

/// Drift gate: the reachable set measured at PR 10 was 166 functions;
/// dropping below this floor means entry points got disconnected or the
/// extractor regressed, not that the workspace legitimately shrank.
pub const MIN_REACHABLE_FNS: f64 = 120.0;

/// Drift gate: fraction of call sites resolving to at least one workspace
/// target. Measured ~0.38 at PR 10 (the rest are std/vendored callees and
/// constructor noise); falling far below means resolution broke.
pub const MIN_RESOLVED_FRACTION: f64 = 0.30;

/// Builds the `plf-bench/v1` envelope for one lint run.
/// `new_findings` are post-baseline; each becomes a violation, as do stale
/// waivers, scope-drift regressions (missing entry points, reachable-set
/// shrinkage, an `OP_PATH_FILES` file with no reachable function) and the
/// baseline/inventory drift notes passed in `extra_violations`.
pub fn envelope(
    ws: &WorkspaceAnalysis,
    new_findings: &[Finding],
    baseline_len: usize,
    extra_violations: &[String],
) -> BenchEnvelope {
    let m = &ws.metrics;
    let mut env = BenchEnvelope::new("phylo_lint", "workspace first-party sources")
        .run_num("files_scanned", ws.files as f64)
        .run_num("rules", ALL_RULES.len() as f64)
        .gate("min_entry_points", ENTRY_POINTS.len() as f64)
        .gate("min_reachable_fns", MIN_REACHABLE_FNS)
        .gate("min_resolved_fraction", MIN_RESOLVED_FRACTION)
        .gate("min_op_path_files_covered", OP_PATH_FILES.len() as f64);
    for rule in ALL_RULES {
        let count = new_findings.iter().filter(|f| f.rule == *rule).count();
        env.measure(
            &format!("findings_{}", rule.as_str().to_lowercase()),
            count as f64,
        );
    }
    env.measure("unsafe_sites", ws.scan.unsafe_sites.len() as f64);
    env.measure("baseline_entries", baseline_len as f64);
    env.measure("stale_waivers", ws.scan.stale_waivers.len() as f64);
    env.measure("entry_points", m.entry_points as f64);
    env.measure("entry_points_missing", m.missing_entry_points.len() as f64);
    env.measure("fns_total", m.fns_total as f64);
    env.measure("fns_reachable", m.fns_reachable as f64);
    env.measure("callsites_total", m.callsites_total as f64);
    env.measure("callsites_resolved", m.callsites_resolved as f64);
    env.measure("callsites_unresolved", m.callsites_unresolved as f64);
    let covered = OP_PATH_FILES
        .iter()
        .filter(|f| ws.reachable_files.iter().any(|r| r == *f))
        .count();
    env.measure("op_path_files_covered", covered as f64);

    for f in new_findings {
        env.violation(format!("{} ({})", f.render(), f.rule.summary()));
    }
    for w in &ws.scan.stale_waivers {
        env.violation(w.render());
    }
    for missing in &m.missing_entry_points {
        env.violation(format!(
            "entry point {missing} matched no extracted function — rename drift, update ENTRY_POINTS"
        ));
    }
    if (m.fns_reachable as f64) < MIN_REACHABLE_FNS {
        env.violation(format!(
            "reachable set shrank to {} fns (drift gate: >= {MIN_REACHABLE_FNS})",
            m.fns_reachable
        ));
    }
    let resolved_fraction = if m.callsites_total > 0 {
        m.callsites_resolved as f64 / m.callsites_total as f64
    } else {
        0.0
    };
    if resolved_fraction < MIN_RESOLVED_FRACTION {
        env.violation(format!(
            "call-site resolution fell to {resolved_fraction:.3} (drift gate: >= {MIN_RESOLVED_FRACTION})"
        ));
    }
    for f in OP_PATH_FILES {
        if !ws.reachable_files.iter().any(|r| r == f) {
            env.violation(format!(
                "op-path file {f} has no reachable function — the reachable set must stay a superset of OP_PATH_FILES"
            ));
        }
    }
    for v in extra_violations {
        env.violation(v.clone());
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_telemetry::BENCH_SCHEMA;

    fn empty_ws(metrics: ReachMetrics, reachable_files: Vec<String>) -> WorkspaceAnalysis {
        WorkspaceAnalysis {
            scan: FileScan::default(),
            files: 10,
            metrics,
            reachable_files,
        }
    }

    fn healthy_metrics() -> ReachMetrics {
        ReachMetrics {
            entry_points: ENTRY_POINTS.len(),
            missing_entry_points: vec![],
            fns_total: 900,
            fns_reachable: 400,
            callsites_total: 1000,
            callsites_resolved: 600,
            callsites_unresolved: 400,
        }
    }

    fn all_op_files() -> Vec<String> {
        OP_PATH_FILES.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn envelope_counts_findings_per_rule() {
        let ws = empty_ws(healthy_metrics(), all_op_files());
        let findings = vec![Finding {
            rule: RuleId::L004,
            file: "crates/x/src/a.rs".into(),
            line: 1,
            excerpt: "use std::sync::atomic::AtomicU64;".into(),
        }];
        let env = envelope(&ws, &findings, 0, &[]);
        assert_eq!(env.schema, BENCH_SCHEMA);
        assert!(!env.passed());
        assert_eq!(env.measured_num("findings_l004"), Some(1.0));
        assert_eq!(env.measured_num("findings_l001"), Some(0.0));
        assert_eq!(env.measured_num("findings_l006"), Some(0.0));
        assert_eq!(env.measured_num("fns_reachable"), Some(400.0));
        let parsed = BenchEnvelope::parse(&env.to_json()).unwrap();
        assert_eq!(parsed, env);
    }

    #[test]
    fn healthy_run_passes() {
        let ws = empty_ws(healthy_metrics(), all_op_files());
        let env = envelope(&ws, &[], 0, &[]);
        assert!(env.passed(), "{:?}", env.violations);
        assert_eq!(
            env.measured_num("op_path_files_covered"),
            Some(OP_PATH_FILES.len() as f64)
        );
    }

    #[test]
    fn scope_drift_is_a_violation() {
        // Missing entry point.
        let mut m = healthy_metrics();
        m.missing_entry_points
            .push("gone in crates/x/src/a.rs".into());
        assert!(!envelope(&empty_ws(m, all_op_files()), &[], 0, &[]).passed());
        // Reachable set collapsed.
        let mut m = healthy_metrics();
        m.fns_reachable = 10;
        assert!(!envelope(&empty_ws(m, all_op_files()), &[], 0, &[]).passed());
        // Resolution collapsed.
        let mut m = healthy_metrics();
        m.callsites_resolved = 10;
        m.callsites_unresolved = 990;
        assert!(!envelope(&empty_ws(m, all_op_files()), &[], 0, &[]).passed());
        // An OP_PATH_FILES file fell out of the reachable set.
        let mut files = all_op_files();
        files.retain(|f| !f.ends_with("dispatch.rs"));
        let env = envelope(&empty_ws(healthy_metrics(), files), &[], 0, &[]);
        assert!(!env.passed());
        assert!(env.violations.iter().any(|v| v.contains("dispatch.rs")));
    }

    #[test]
    fn stale_waivers_fail_the_gate() {
        let mut ws = empty_ws(healthy_metrics(), all_op_files());
        ws.scan.stale_waivers.push(StaleWaiver {
            file: "crates/x/src/a.rs".into(),
            line: 7,
            rule: "L001".into(),
        });
        let env = envelope(&ws, &[], 0, &[]);
        assert!(!env.passed());
        assert_eq!(env.measured_num("stale_waivers"), Some(1.0));
        assert!(env.violations[0].contains("stale waiver"));
    }

    #[test]
    fn rule_ids_round_trip_and_stay_stable() {
        for rule in ALL_RULES {
            assert_eq!(RuleId::parse(rule.as_str()), Some(*rule));
        }
        // The textual IDs are stable public API; this test is the tripwire.
        let ids: Vec<&str> = ALL_RULES.iter().map(|r| r.as_str()).collect();
        assert_eq!(
            ids,
            vec!["L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008"]
        );
    }
}
