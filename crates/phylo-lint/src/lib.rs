//! Workspace invariant linter for the phylogenetic-likelihood workspace.
//!
//! `phylo-lint` is a dependency-free static-analysis tool (its own
//! comment/string-aware lexer, no `syn`, no `rustc` internals) that enforces
//! the invariants the likelihood kernel's error-handling and concurrency
//! design rest on. It runs in CI as `cargo run -p phylo-lint -- --check` and
//! emits its result as a `plf-bench/v1` [`BenchEnvelope`] JSON document like
//! every other gate in the workspace.
//!
//! # Rules (stable IDs — public API, never renumbered)
//!
//! | ID | Invariant |
//! |----|-----------|
//! | **L001** | No `panic!` / `.unwrap()` / `.expect(` / `unreachable!` / `todo!` in the kernel op-execution path (`phylo-kernel::{ops,slice,tables,executor,engine}`, worker loops in `phylo-parallel`) outside `#[cfg(test)]`. Misuse surfaces as typed `OpError` / `KernelError`. |
//! | **L002** | No `debug_assert!` family guarding shape/soundness invariants in non-test kernel/parallel code — release builds must check too. |
//! | **L003** | Every `unsafe` block / `unsafe impl` is immediately preceded by a `// SAFETY:` comment; all sites are listed in the committed `UNSAFE_INVENTORY.md`. |
//! | **L004** | `std::sync::atomic` is confined to each crate's designated `sync` module. |
//! | **L005** | No `Mutex` / `RwLock` acquisition in per-op kernel paths. |
//!
//! Findings can be waived inline with `// lint:allow(L001): reason` (the
//! reason is mandatory) on the offending line or the line above. A committed
//! `lint-baseline.txt` can grandfather findings — the repo keeps it empty.
//!
//! [`BenchEnvelope`]: phylo_telemetry::BenchEnvelope

#![forbid(unsafe_code)]

pub mod inventory;
pub mod lexer;
pub mod rules;
pub mod scan;
pub mod workspace;

pub use rules::{Finding, RuleId, ALL_RULES};
pub use scan::{scan_source, FileScan, UnsafeSite};
pub use workspace::{find_root, scan_workspace, Baseline};

use phylo_telemetry::BenchEnvelope;

/// Builds the `plf-bench/v1` envelope for one lint run over `files` files.
/// `new_findings` are post-baseline; each becomes a violation, as do
/// baseline/inventory drift notes passed in `extra_violations`.
pub fn envelope(
    files: usize,
    scan: &FileScan,
    new_findings: &[Finding],
    baseline_len: usize,
    extra_violations: &[String],
) -> BenchEnvelope {
    let mut env = BenchEnvelope::new("phylo_lint", "workspace first-party sources")
        .run_num("files_scanned", files as f64)
        .run_num("rules", ALL_RULES.len() as f64);
    for rule in ALL_RULES {
        let count = new_findings.iter().filter(|f| f.rule == *rule).count();
        env.measure(
            &format!("findings_{}", rule.as_str().to_lowercase()),
            count as f64,
        );
    }
    env.measure("unsafe_sites", scan.unsafe_sites.len() as f64);
    env.measure("baseline_entries", baseline_len as f64);
    for f in new_findings {
        env.violation(format!("{} ({})", f.render(), f.rule.summary()));
    }
    for v in extra_violations {
        env.violation(v.clone());
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_telemetry::BENCH_SCHEMA;

    #[test]
    fn envelope_counts_findings_per_rule() {
        let scan = FileScan::default();
        let findings = vec![Finding {
            rule: RuleId::L004,
            file: "crates/x/src/a.rs".into(),
            line: 1,
            excerpt: "use std::sync::atomic::AtomicU64;".into(),
        }];
        let env = envelope(10, &scan, &findings, 0, &[]);
        assert_eq!(env.schema, BENCH_SCHEMA);
        assert!(!env.passed());
        assert_eq!(env.measured_num("findings_l004"), Some(1.0));
        assert_eq!(env.measured_num("findings_l001"), Some(0.0));
        let parsed = BenchEnvelope::parse(&env.to_json()).unwrap();
        assert_eq!(parsed, env);
    }

    #[test]
    fn rule_ids_round_trip_and_stay_stable() {
        for rule in ALL_RULES {
            assert_eq!(RuleId::parse(rule.as_str()), Some(*rule));
        }
        // The textual IDs are stable public API; this test is the tripwire.
        let ids: Vec<&str> = ALL_RULES.iter().map(|r| r.as_str()).collect();
        assert_eq!(ids, vec!["L001", "L002", "L003", "L004", "L005"]);
    }
}
