//! Workspace discovery and the whole-tree analysis, plus the baseline file.

use std::fs;
use std::path::{Path, PathBuf};

use crate::callgraph::{self, ReachMetrics, ENTRY_POINTS};
use crate::items;
use crate::lexer::SourceView;
use crate::rules::Finding;
use crate::scan::{cfg_test_ranges, scan_source, FileScan, FileScope};

/// Locates the workspace root: ascends from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// First-party source files: `src/**/*.rs` of the root package and of every
/// `crates/*` member. `vendor/` (third-party stand-ins) and `target/` are
/// never visited; `tests/`, `benches/` and `examples/` are intentionally out
/// of scope — the rules guard shipped code paths.
pub fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            dirs.push(entry.path().join("src"));
        }
    }
    while let Some(dir) = dirs.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                dirs.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// The workspace-relative, forward-slash form of `path` used in findings,
/// waiver scopes and the baseline file.
pub fn relative_name(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The whole-workspace analysis result: the merged scan, the reachability
/// metrics, and the files the reachable set touches (for the
/// `OP_PATH_FILES` subset sanity check).
pub struct WorkspaceAnalysis {
    pub scan: FileScan,
    /// Number of source files visited.
    pub files: usize,
    pub metrics: ReachMetrics,
    /// Workspace-relative files containing at least one reachable function.
    pub reachable_files: Vec<String>,
}

/// Runs the full pipeline over the workspace: read every first-party
/// source, extract fn/impl/trait items, build the call graph, compute
/// reachability from [`ENTRY_POINTS`], derive per-file scopes, and scan
/// each file under its scope.
pub fn analyze_workspace(root: &Path) -> WorkspaceAnalysis {
    let files = source_files(root);
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        if let Ok(source) = fs::read_to_string(path) {
            sources.push((relative_name(root, path), source));
        }
    }

    let mut all_items = Vec::new();
    for (name, source) in &sources {
        let view = SourceView::new(source);
        let test_ranges = cfg_test_ranges(&view.code);
        all_items.extend(items::extract(name, &view, &test_ranges));
    }
    let analysis = callgraph::analyze(all_items, ENTRY_POINTS);
    let scopes = analysis.file_scopes();

    let mut merged = FileScan::default();
    let empty = FileScope::default();
    for (name, source) in &sources {
        let scope = scopes.get(name).unwrap_or(&empty);
        let scan = scan_source(name, source, scope);
        merged.findings.extend(scan.findings);
        merged.unsafe_sites.extend(scan.unsafe_sites);
        merged.stale_waivers.extend(scan.stale_waivers);
    }
    merged
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let reachable_files = analysis.reachable_files();
    WorkspaceAnalysis {
        scan: merged,
        files: sources.len(),
        metrics: analysis.metrics,
        reachable_files,
    }
}

/// The committed baseline: grandfathered findings, one `RULE file:line` per
/// line, `#` comments and blank lines ignored. The repo's baseline ships —
/// and must stay — empty; the file exists so a future emergency has an
/// explicit, reviewable escape hatch.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<String>,
}

impl Baseline {
    /// Parses the baseline file's text.
    pub fn parse(text: &str) -> Self {
        Self {
            entries: text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(String::from)
                .collect(),
        }
    }

    /// Loads `lint-baseline.txt` from the workspace root (absent = empty).
    pub fn load(root: &Path) -> Self {
        fs::read_to_string(root.join("lint-baseline.txt"))
            .map(|t| Self::parse(&t))
            .unwrap_or_default()
    }

    /// Number of grandfathered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline is empty (the healthy state).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Splits findings into (new, suppressed-by-baseline).
    pub fn partition(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        findings
            .into_iter()
            .partition(|f| !self.entries.contains(&f.baseline_key()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    #[test]
    fn baseline_parses_and_partitions() {
        let b = Baseline::parse("# comment\n\nL001 crates/x/src/a.rs:10\n");
        assert_eq!(b.len(), 1);
        let findings = vec![
            Finding {
                rule: RuleId::L001,
                file: "crates/x/src/a.rs".into(),
                line: 10,
                excerpt: "x.unwrap()".into(),
            },
            Finding {
                rule: RuleId::L001,
                file: "crates/x/src/a.rs".into(),
                line: 11,
                excerpt: "y.unwrap()".into(),
            },
        ];
        let (new, old) = b.partition(findings);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].line, 11);
        assert_eq!(old.len(), 1);
    }

    #[test]
    fn empty_baseline_is_empty() {
        assert!(Baseline::parse("# nothing\n").is_empty());
    }
}
