//! The workspace call graph and reachability from the op-path entry points.
//!
//! PR 7's linter scoped its op-path rules by a hardcoded file list
//! (`OP_PATH_FILES`) — which drifted the moment PR 9 added `blocked.rs` and
//! never covered the `phylo-serve` dispatcher at all. This module replaces
//! the list with the thing it approximated: the set of functions
//! **transitively reachable** from the declared per-op entry points, computed
//! over the extracted items of all 15 crates with the conservative
//! resolution of [`crate::resolve`]. The old file list survives only as a
//! must-be-subset sanity check (every `OP_PATH_FILES` file must still
//! contain at least one reachable function — otherwise the analysis, not the
//! code, has regressed).

use std::collections::BTreeMap;

use crate::items::FnItem;
use crate::resolve::Index;
use crate::scan::FileScope;

/// A declared op-path entry point: `name` is `fn_name` for free functions or
/// `Type::method` for associated items, and must exist in `file` — a missing
/// entry point is itself a gate violation, so renames can't silently shrink
/// the analyzed scope.
#[derive(Debug, Clone, Copy)]
pub struct EntryPoint {
    pub file: &'static str,
    pub name: &'static str,
}

/// The roots of the per-op hot path: everything a serving deployment
/// executes per kernel op, per worker drain, or per dispatch round.
pub const ENTRY_POINTS: &[EntryPoint] = &[
    // Worker-side op execution (all backends funnel through these).
    ep("crates/phylo-kernel/src/executor.rs", "execute_on_worker"),
    ep("crates/phylo-kernel/src/executor.rs", "reduce_outputs"),
    ep(
        "crates/phylo-kernel/src/executor.rs",
        "SequentialExecutor::execute",
    ),
    // Scalar and tabled kernel steps.
    ep("crates/phylo-kernel/src/ops.rs", "newview_step"),
    ep("crates/phylo-kernel/src/ops.rs", "newview_step_tabled"),
    ep("crates/phylo-kernel/src/ops.rs", "evaluate_edge"),
    ep("crates/phylo-kernel/src/ops.rs", "evaluate_edge_tabled"),
    ep("crates/phylo-kernel/src/ops.rs", "build_sumtable"),
    ep(
        "crates/phylo-kernel/src/ops.rs",
        "derivatives_from_sumtable",
    ),
    // Width-specialized blocked kernels (PR 9).
    ep("crates/phylo-kernel/src/blocked.rs", "newview_step_blocked"),
    ep(
        "crates/phylo-kernel/src/blocked.rs",
        "evaluate_edge_blocked",
    ),
    // The master-side engine API every driver loops over.
    ep(
        "crates/phylo-kernel/src/engine.rs",
        "LikelihoodKernel::try_update_clvs",
    ),
    ep(
        "crates/phylo-kernel/src/engine.rs",
        "LikelihoodKernel::try_log_likelihood",
    ),
    ep(
        "crates/phylo-kernel/src/engine.rs",
        "LikelihoodKernel::try_log_likelihood_at",
    ),
    ep(
        "crates/phylo-kernel/src/engine.rs",
        "LikelihoodKernel::try_log_likelihood_partitions",
    ),
    ep(
        "crates/phylo-kernel/src/engine.rs",
        "LikelihoodKernel::try_prepare_branch",
    ),
    ep(
        "crates/phylo-kernel/src/engine.rs",
        "LikelihoodKernel::try_branch_derivatives",
    ),
    // Parallel backends: the execute() calls and the worker loops they
    // spawn (the closure bodies live inside spawn_handles).
    ep(
        "crates/phylo-parallel/src/threaded.rs",
        "ThreadedExecutor::execute",
    ),
    ep(
        "crates/phylo-parallel/src/threaded.rs",
        "ThreadedExecutor::spawn_handles",
    ),
    ep(
        "crates/phylo-parallel/src/rayon_exec.rs",
        "RayonExecutor::execute",
    ),
    ep(
        "crates/phylo-parallel/src/tracing.rs",
        "TracingExecutor::execute",
    ),
    // phylo-serve: the dispatcher drain loop, the pool worker loop, and
    // the per-session executor bridge (PR 10 satellite — this hot loop was
    // the coverage gap).
    ep("crates/phylo-serve/src/dispatch.rs", "Dispatcher::run"),
    ep("crates/phylo-serve/src/pool.rs", "worker_loop"),
    ep("crates/phylo-serve/src/pool.rs", "run_entry"),
    ep(
        "crates/phylo-serve/src/session.rs",
        "PooledExecutor::execute",
    ),
];

const fn ep(file: &'static str, name: &'static str) -> EntryPoint {
    EntryPoint { file, name }
}

/// Files whose reachable functions are additionally subject to L007
/// (no per-pattern allocation inside loop bodies): the kernel inner loops.
/// `tables.rs` is deliberately absent — per-(partition, branch) table
/// construction allocates by design, once per branch rather than per
/// pattern.
pub const KERNEL_LOOP_FILES: &[&str] = &[
    "crates/phylo-kernel/src/ops.rs",
    "crates/phylo-kernel/src/blocked.rs",
    "crates/phylo-kernel/src/slice.rs",
];

/// The crate allowed to touch clocks on the op path: L008 exempts the
/// telemetry timing facade itself.
pub const CLOCK_FACADE_PREFIX: &str = "crates/phylo-telemetry/";

/// Reachability metrics reported in the envelope and drift-gated in CI.
#[derive(Debug, Clone, Default)]
pub struct ReachMetrics {
    /// Declared entry points.
    pub entry_points: usize,
    /// Entry points that matched no extracted item (must be empty).
    pub missing_entry_points: Vec<String>,
    /// Non-test functions extracted across the workspace.
    pub fns_total: usize,
    /// Functions transitively reachable from the entry points.
    pub fns_reachable: usize,
    /// Call sites inside non-test function bodies.
    pub callsites_total: usize,
    /// Call sites that resolved to at least one workspace function.
    pub callsites_resolved: usize,
    /// Call sites with no workspace target (std/vendored/constructors).
    pub callsites_unresolved: usize,
}

/// The result of the workspace call-graph analysis.
pub struct Analysis {
    pub items: Vec<FnItem>,
    /// Parallel to `items`: transitively reachable from an entry point.
    pub reachable: Vec<bool>,
    pub metrics: ReachMetrics,
}

impl Analysis {
    /// Workspace-relative files containing at least one reachable function.
    pub fn reachable_files(&self) -> Vec<String> {
        let mut files: Vec<String> = self
            .items
            .iter()
            .zip(&self.reachable)
            .filter(|(_, &r)| r)
            .map(|(it, _)| it.file.clone())
            .collect();
        files.sort();
        files.dedup();
        files
    }

    /// Qualified names of the reachable functions in `file`.
    pub fn reachable_fns_in(&self, file: &str) -> Vec<String> {
        self.items
            .iter()
            .zip(&self.reachable)
            .filter(|(it, &r)| r && it.file == file)
            .map(|(it, _)| it.qualified_name())
            .collect()
    }

    /// Derives each file's lint scope from the reachable function spans:
    /// `op_path` (L001/L002/L005/L006) covers every reachable body,
    /// `kernel` (L007) only those in [`KERNEL_LOOP_FILES`], and `clock`
    /// (L008) everything outside the telemetry facade.
    pub fn file_scopes(&self) -> BTreeMap<String, FileScope> {
        let mut scopes: BTreeMap<String, FileScope> = BTreeMap::new();
        for (item, &reach) in self.items.iter().zip(&self.reachable) {
            if !reach || !item.has_body {
                continue;
            }
            let scope = scopes.entry(item.file.clone()).or_default();
            let span = (item.start_line, item.end_line);
            scope.op_path.push(span);
            if KERNEL_LOOP_FILES.contains(&item.file.as_str()) {
                scope.kernel.push(span);
            }
            if !item.file.starts_with(CLOCK_FACADE_PREFIX) {
                scope.clock.push(span);
            }
        }
        scopes
    }
}

/// Builds the call graph over `items` and computes reachability from
/// `entries`. Test items are neither roots nor targets.
pub fn analyze(items: Vec<FnItem>, entries: &[EntryPoint]) -> Analysis {
    let index = Index::build(&items);

    // Resolve every non-test call site once, up front: the edge list is the
    // same whether or not the caller ends up reachable, and resolving all of
    // them gives a reachability-independent drift signal.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); items.len()];
    let mut metrics = ReachMetrics {
        entry_points: entries.len(),
        ..Default::default()
    };
    for (i, item) in items.iter().enumerate() {
        if item.in_test {
            continue;
        }
        metrics.fns_total += 1;
        for call in &item.calls {
            metrics.callsites_total += 1;
            let targets = index.resolve(&items, item, call);
            if targets.is_empty() {
                metrics.callsites_unresolved += 1;
            } else {
                metrics.callsites_resolved += 1;
            }
            edges[i].extend(targets);
        }
        edges[i].sort_unstable();
        edges[i].dedup();
    }

    // Roots: each declared entry point must match exactly by file + name.
    let mut reachable = vec![false; items.len()];
    let mut queue: Vec<usize> = Vec::new();
    for entry in entries {
        let (qual, name) = match entry.name.split_once("::") {
            Some((q, n)) => (Some(q), n),
            None => (None, entry.name),
        };
        let mut found = false;
        for (i, item) in items.iter().enumerate() {
            if item.in_test || item.file != entry.file || item.name != name {
                continue;
            }
            match qual {
                Some(q) if item.qualifier.as_deref() != Some(q) => continue,
                None if item.qualifier.is_some() => continue,
                _ => {}
            }
            found = true;
            if !reachable[i] {
                reachable[i] = true;
                queue.push(i);
            }
        }
        if !found {
            metrics
                .missing_entry_points
                .push(format!("{} in {}", entry.name, entry.file));
        }
    }

    // BFS over the resolved edges. Trait declarations with no body are
    // legitimate nodes (their impls were fanned out at resolution time).
    while let Some(i) = queue.pop() {
        for &t in &edges[i] {
            if !reachable[t] && !items[t].in_test {
                reachable[t] = true;
                queue.push(t);
            }
        }
    }
    metrics.fns_reachable = reachable.iter().filter(|&&r| r).count();

    Analysis {
        items,
        reachable,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::lexer::SourceView;
    use crate::scan::cfg_test_ranges;

    fn items_of(sources: &[(&str, &str)]) -> Vec<FnItem> {
        let mut out = Vec::new();
        for (file, src) in sources {
            let view = SourceView::new(src);
            let ranges = cfg_test_ranges(&view.code);
            out.extend(extract(file, &view, &ranges));
        }
        out
    }

    #[test]
    fn reachability_crosses_crates_and_traits() {
        let items = items_of(&[
            (
                "crates/serve/src/pool.rs",
                "\
fn worker_loop(n: usize) { step(n); }
fn step(n: usize) { phylo_kernel::newview(n); }
fn dead(n: usize) { n.checked_add(1); }
",
            ),
            (
                "crates/kernel/src/ops.rs",
                "pub fn newview(n: usize) -> usize { inner(n) }\nfn inner(n: usize) -> usize { n }\n",
            ),
        ]);
        let a = analyze(
            items,
            &[EntryPoint {
                file: "crates/serve/src/pool.rs",
                name: "worker_loop",
            }],
        );
        let reach: Vec<&str> = a
            .items
            .iter()
            .zip(&a.reachable)
            .filter(|(_, &r)| r)
            .map(|(it, _)| it.name.as_str())
            .collect();
        assert!(reach.contains(&"worker_loop"));
        assert!(reach.contains(&"step"));
        assert!(reach.contains(&"newview"), "{reach:?}");
        assert!(reach.contains(&"inner"));
        assert!(!reach.contains(&"dead"));
        assert_eq!(a.metrics.fns_reachable, 4);
        assert!(a.metrics.missing_entry_points.is_empty());
    }

    #[test]
    fn missing_entry_point_is_reported() {
        let items = items_of(&[("crates/a/src/lib.rs", "fn real() {}\n")]);
        let a = analyze(
            items,
            &[EntryPoint {
                file: "crates/a/src/lib.rs",
                name: "renamed_away",
            }],
        );
        assert_eq!(a.metrics.missing_entry_points.len(), 1);
        assert_eq!(a.metrics.fns_reachable, 0);
    }

    #[test]
    fn qualified_entry_points_match_methods() {
        let items = items_of(&[(
            "crates/a/src/lib.rs",
            "\
struct Engine;
impl Engine {
    pub fn run(&self) { helper(); }
}
fn helper() {}
fn run() {}
",
        )]);
        let a = analyze(
            items,
            &[EntryPoint {
                file: "crates/a/src/lib.rs",
                name: "Engine::run",
            }],
        );
        // The method and its callee, NOT the same-named free fn.
        assert_eq!(a.metrics.fns_reachable, 2);
        let scopes = a.file_scopes();
        let scope = &scopes["crates/a/src/lib.rs"];
        assert_eq!(scope.op_path.len(), 2);
    }

    #[test]
    fn scopes_mark_kernel_and_clock_tiers() {
        let items = items_of(&[
            (
                "crates/phylo-kernel/src/ops.rs",
                "pub fn newview_step(n: usize) { tick(n); }\nfn tick(_n: usize) {}\n",
            ),
            (
                "crates/phylo-telemetry/src/clock.rs",
                "pub fn tock(_n: usize) {}\n",
            ),
        ]);
        let mut items = items;
        // Wire ops::tick -> telemetry::tock by hand-editing the call list:
        // lexically `tick(n)` resolves same-file; add a cross-crate call.
        items[0].calls.push(crate::items::CallSite {
            kind: crate::items::CallKind::Free,
            name: "tock".into(),
            arity: 1,
            line: 1,
        });
        let a = analyze(
            items,
            &[EntryPoint {
                file: "crates/phylo-kernel/src/ops.rs",
                name: "newview_step",
            }],
        );
        let scopes = a.file_scopes();
        let ops = &scopes["crates/phylo-kernel/src/ops.rs"];
        assert!(!ops.kernel.is_empty(), "ops.rs is a kernel-loop file");
        assert!(!ops.clock.is_empty());
        let tel = &scopes["crates/phylo-telemetry/src/clock.rs"];
        assert!(tel.kernel.is_empty());
        assert!(tel.clock.is_empty(), "telemetry facade is exempt from L008");
        assert!(!tel.op_path.is_empty(), "but not from L001/L002/L005/L006");
    }

    #[test]
    fn workspace_entry_points_are_well_formed() {
        for e in ENTRY_POINTS {
            assert!(e.file.starts_with("crates/"), "{}", e.file);
            assert!(e.file.ends_with(".rs"));
            assert!(!e.name.is_empty());
        }
    }
}
