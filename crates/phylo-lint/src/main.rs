//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p phylo-lint -- --check [--json PATH]   # gate mode (CI)
//! cargo run -p phylo-lint -- --write-inventory       # refresh UNSAFE_INVENTORY.md
//! ```
//!
//! `--check` exits nonzero if any rule fires beyond the committed baseline,
//! or if `UNSAFE_INVENTORY.md` has drifted from the source tree.

use std::path::PathBuf;
use std::process::ExitCode;

use phylo_lint::{analyze_workspace, envelope, find_root, inventory, Baseline};

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    check: bool,
    write_inventory: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: None,
        check: false,
        write_inventory: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check = true,
            "--write-inventory" => args.write_inventory = true,
            "--root" => args.root = Some(PathBuf::from(it.next().ok_or("--root needs a path")?)),
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?)),
            "--help" | "-h" => {
                println!(
                    "phylo-lint: workspace invariant linter\n\n\
                     USAGE: phylo-lint [--check] [--write-inventory] [--root DIR] [--json PATH]\n\n\
                     --check            fail on findings beyond the baseline or inventory drift\n\
                     --write-inventory  regenerate UNSAFE_INVENTORY.md\n\
                     --root DIR         workspace root (default: discovered from cwd)\n\
                     --json PATH        write the plf-bench/v1 envelope to PATH"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if !args.check && !args.write_inventory {
        args.check = true;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("phylo-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let cwd = std::env::current_dir().expect("cannot read current directory");
    let Some(root) = args.root.clone().or_else(|| find_root(&cwd)) else {
        eprintln!(
            "phylo-lint: no workspace root found above {}",
            cwd.display()
        );
        return ExitCode::from(2);
    };

    let ws = analyze_workspace(&root);
    let inventory_doc = inventory::render(&ws.scan.unsafe_sites);
    let inventory_path = root.join("UNSAFE_INVENTORY.md");

    if args.write_inventory {
        if let Err(e) = std::fs::write(&inventory_path, &inventory_doc) {
            eprintln!("phylo-lint: cannot write {}: {e}", inventory_path.display());
            return ExitCode::from(2);
        }
        println!(
            "phylo-lint: wrote {} ({} unsafe sites)",
            inventory_path.display(),
            ws.scan.unsafe_sites.len()
        );
        if !args.check {
            return ExitCode::SUCCESS;
        }
    }

    let baseline = Baseline::load(&root);
    let (new_findings, grandfathered) = baseline.partition(ws.scan.findings.clone());

    let mut extra = Vec::new();
    match std::fs::read_to_string(&inventory_path) {
        Ok(committed) if committed == inventory_doc => {}
        Ok(_) => extra.push(
            "UNSAFE_INVENTORY.md drifted from the source tree; run `cargo run -p phylo-lint -- --write-inventory`"
                .to_string(),
        ),
        Err(_) => extra.push(
            "UNSAFE_INVENTORY.md missing; run `cargo run -p phylo-lint -- --write-inventory`"
                .to_string(),
        ),
    }

    let env = envelope(&ws, &new_findings, baseline.len(), &extra);
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, env.to_json()) {
            eprintln!("phylo-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let m = &ws.metrics;
    println!(
        "phylo-lint: {} files, {} entry points ({} missing), {}/{} fns reachable, \
         {}/{} call sites resolved",
        ws.files,
        m.entry_points,
        m.missing_entry_points.len(),
        m.fns_reachable,
        m.fns_total,
        m.callsites_resolved,
        m.callsites_total,
    );
    println!(
        "phylo-lint: {} unsafe sites, {} finding(s), {} stale waiver(s), {} grandfathered, baseline {}",
        ws.scan.unsafe_sites.len(),
        new_findings.len(),
        ws.scan.stale_waivers.len(),
        grandfathered.len(),
        if baseline.is_empty() {
            "empty"
        } else {
            "NON-EMPTY"
        }
    );
    for v in &env.violations {
        println!("  {v}");
    }
    if env.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
