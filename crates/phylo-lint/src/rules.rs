//! The workspace invariants, with **stable** rule identifiers.
//!
//! Rule IDs are public API: they appear in waiver comments
//! (`// lint:allow(L001): reason`), in the committed baseline file, in CI
//! logs and in the JSON envelope. They are never renumbered or reused; a
//! retired rule's ID is retired with it.

use std::fmt;

/// A lint rule identifier. The numbering is append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// No `panic!` / `.unwrap()` / `.expect(` / `unreachable!` / `todo!` in
    /// the kernel op-execution path or the `phylo-parallel` worker loops
    /// (outside `#[cfg(test)]`). Misuse must surface as a typed
    /// `OpError`/`KernelError`, not a worker-poisoning panic.
    L001,
    /// No `debug_assert!` family guarding shape/soundness invariants in
    /// non-test kernel/parallel code: an invariant strong enough to justify
    /// an assert in a debug build is strong enough to need a typed error
    /// (or a plain `assert!` at construction time) in a release build.
    L002,
    /// Every `unsafe` block and `unsafe impl` is immediately preceded by a
    /// `// SAFETY:` comment stating the obligation being discharged.
    L003,
    /// `std::sync::atomic` is confined to each crate's designated `sync`
    /// module, so memory-ordering-sensitive code has one auditable home
    /// (and one seam the model checker can instrument).
    L004,
    /// No `Mutex`/`RwLock` types or `.lock()` acquisitions in the per-op
    /// kernel paths: blocking a worker inside an op turns load imbalance
    /// into a convoy.
    L005,
    /// No `HashMap`/`HashSet` iteration (`for`, `.iter()`, `.keys()`,
    /// `.values()`, `.drain()`) in reachable op-path code: hash iteration
    /// order is nondeterministic across processes, so any reduction,
    /// scheduling or dispatch decision derived from it silently breaks the
    /// bit-identical-lnL guarantee. Iterate a `BTreeMap`/sorted worker index
    /// instead; point lookups (`get`/`insert`/`remove`) are fine.
    L006,
    /// No heap allocation (`Vec::new`, `vec![]`, `.collect`, `.to_vec`,
    /// `format!`, `Box::new`, buffer `.clone()`, `.push`, ...) inside loop
    /// bodies of reachable kernel functions: the per-pattern inner loops run
    /// millions of times per op and must work in preallocated buffers.
    L007,
    /// No wall-clock or RNG (`Instant::now`, `SystemTime`, `thread_rng`) in
    /// reachable op-path code outside the telemetry timing facade: time and
    /// randomness on the op path either feed results (breaking determinism)
    /// or are unaccounted overhead the telemetry budget can't see.
    L008,
}

/// Every rule, in ID order.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::L001,
    RuleId::L002,
    RuleId::L003,
    RuleId::L004,
    RuleId::L005,
    RuleId::L006,
    RuleId::L007,
    RuleId::L008,
];

impl RuleId {
    /// The stable textual ID (`"L001"`...).
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::L001 => "L001",
            RuleId::L002 => "L002",
            RuleId::L003 => "L003",
            RuleId::L004 => "L004",
            RuleId::L005 => "L005",
            RuleId::L006 => "L006",
            RuleId::L007 => "L007",
            RuleId::L008 => "L008",
        }
    }

    /// Parses a textual ID back (used by waivers and the baseline file).
    pub fn parse(s: &str) -> Option<Self> {
        ALL_RULES.iter().copied().find(|r| r.as_str() == s)
    }

    /// One-line description, shown in reports.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::L001 => "no panic/unwrap/expect/unreachable/todo in kernel op-execution paths",
            RuleId::L002 => "no debug_assert guarding invariants in non-test kernel/parallel code",
            RuleId::L003 => {
                "every unsafe block/impl carries an immediately-preceding SAFETY comment"
            }
            RuleId::L004 => "std::sync::atomic confined to the designated sync module",
            RuleId::L005 => "no Mutex/RwLock acquisition in per-op kernel paths",
            RuleId::L006 => {
                "no HashMap/HashSet iteration in order-sensitive reachable op-path code"
            }
            RuleId::L007 => "no heap allocation in loop bodies of reachable kernel functions",
            RuleId::L008 => {
                "no wall-clock/RNG in reachable op-path code outside the telemetry facade"
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: RuleId,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl Finding {
    /// The canonical single-line form, also used by the baseline file.
    pub fn render(&self) -> String {
        format!("{} {}:{} {}", self.rule, self.file, self.line, self.excerpt)
    }

    /// The location key the baseline file matches on.
    pub fn baseline_key(&self) -> String {
        format!("{} {}:{}", self.rule, self.file, self.line)
    }
}
