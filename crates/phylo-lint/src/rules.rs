//! The workspace invariants, with **stable** rule identifiers.
//!
//! Rule IDs are public API: they appear in waiver comments
//! (`// lint:allow(L001): reason`), in the committed baseline file, in CI
//! logs and in the JSON envelope. They are never renumbered or reused; a
//! retired rule's ID is retired with it.

use std::fmt;

/// A lint rule identifier. The numbering is append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// No `panic!` / `.unwrap()` / `.expect(` / `unreachable!` / `todo!` in
    /// the kernel op-execution path or the `phylo-parallel` worker loops
    /// (outside `#[cfg(test)]`). Misuse must surface as a typed
    /// `OpError`/`KernelError`, not a worker-poisoning panic.
    L001,
    /// No `debug_assert!` family guarding shape/soundness invariants in
    /// non-test kernel/parallel code: an invariant strong enough to justify
    /// an assert in a debug build is strong enough to need a typed error
    /// (or a plain `assert!` at construction time) in a release build.
    L002,
    /// Every `unsafe` block and `unsafe impl` is immediately preceded by a
    /// `// SAFETY:` comment stating the obligation being discharged.
    L003,
    /// `std::sync::atomic` is confined to each crate's designated `sync`
    /// module, so memory-ordering-sensitive code has one auditable home
    /// (and one seam the model checker can instrument).
    L004,
    /// No `Mutex`/`RwLock` types or `.lock()` acquisitions in the per-op
    /// kernel paths: blocking a worker inside an op turns load imbalance
    /// into a convoy.
    L005,
}

/// Every rule, in ID order.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::L001,
    RuleId::L002,
    RuleId::L003,
    RuleId::L004,
    RuleId::L005,
];

impl RuleId {
    /// The stable textual ID (`"L001"`...).
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::L001 => "L001",
            RuleId::L002 => "L002",
            RuleId::L003 => "L003",
            RuleId::L004 => "L004",
            RuleId::L005 => "L005",
        }
    }

    /// Parses a textual ID back (used by waivers and the baseline file).
    pub fn parse(s: &str) -> Option<Self> {
        ALL_RULES.iter().copied().find(|r| r.as_str() == s)
    }

    /// One-line description, shown in reports.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::L001 => "no panic/unwrap/expect/unreachable/todo in kernel op-execution paths",
            RuleId::L002 => "no debug_assert guarding invariants in non-test kernel/parallel code",
            RuleId::L003 => {
                "every unsafe block/impl carries an immediately-preceding SAFETY comment"
            }
            RuleId::L004 => "std::sync::atomic confined to the designated sync module",
            RuleId::L005 => "no Mutex/RwLock acquisition in per-op kernel paths",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: RuleId,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl Finding {
    /// The canonical single-line form, also used by the baseline file.
    pub fn render(&self) -> String {
        format!("{} {}:{} {}", self.rule, self.file, self.line, self.excerpt)
    }

    /// The location key the baseline file matches on.
    pub fn baseline_key(&self) -> String {
        format!("{} {}:{}", self.rule, self.file, self.line)
    }
}
