//! Property-based integration tests over randomly generated datasets and
//! trees: invariants of the likelihood kernel that must hold regardless of
//! the input.

use plf_loadbalance::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn build_kernel(
    taxa: usize,
    columns: usize,
    partition_len: usize,
    seed: u64,
    mode: BranchLengthMode,
) -> (SequentialKernel, plf_loadbalance::seqgen::GeneratedDataset) {
    let ds = paper_simulated(taxa, columns, partition_len, seed).generate();
    let models = ModelSet::default_for(&ds.patterns, mode);
    let k = SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap();
    (k, ds)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// The likelihood must not depend on where the virtual root is placed.
    #[test]
    fn likelihood_is_root_invariant(seed in 0u64..500, taxa in 4usize..9) {
        let (mut kernel, _) = build_kernel(taxa, 120, 40, seed, BranchLengthMode::PerPartition);
        let branches: Vec<_> = kernel.tree().branches().collect();
        let reference = kernel.try_log_likelihood_at(branches[0]).unwrap();
        for &b in branches.iter().skip(1).step_by(2) {
            let lnl = kernel.try_log_likelihood_at(b).unwrap();
            prop_assert!((lnl - reference).abs() < 1e-7, "branch {}: {} vs {}", b, lnl, reference);
        }
    }

    /// Applying and undoing a random SPR move restores the likelihood exactly.
    #[test]
    fn spr_apply_undo_is_lossless(seed in 0u64..500) {
        let (mut kernel, _) = build_kernel(8, 160, 40, seed, BranchLengthMode::PerPartition);
        let before = kernel.try_log_likelihood().unwrap();
        let tree = kernel.tree().clone();
        let node = tree.internal_nodes().next().unwrap();
        let (subtree, _) = tree.neighbors(node)[0];
        let moves = plf_loadbalance::tree::spr::candidate_moves(&tree, node, subtree, 4);
        if let Some(&mv) = moves.first() {
            let app = kernel.apply_spr(mv).unwrap();
            let _ = kernel.try_log_likelihood().unwrap();
            kernel.undo_spr(&app);
            let after = kernel.try_log_likelihood().unwrap();
            prop_assert!((after - before).abs() < 1e-6, "{} vs {}", before, after);
        }
    }

    /// Branch-length optimization never decreases the log likelihood, under
    /// either scheme and either branch-length mode.
    #[test]
    fn optimization_is_monotone(seed in 0u64..200, new_scheme in proptest::bool::ANY, per_partition in proptest::bool::ANY) {
        let mode = if per_partition { BranchLengthMode::PerPartition } else { BranchLengthMode::Joint };
        let scheme = if new_scheme { ParallelScheme::New } else { ParallelScheme::Old };
        let (mut kernel, _) = build_kernel(6, 120, 60, seed, mode);
        let before = kernel.try_log_likelihood().unwrap();
        let (after, _) = optimize_all_branches(&mut kernel, None, &OptimizerConfig::new(scheme)).unwrap();
        prop_assert!(after >= before - 1e-6, "lnL decreased: {} -> {}", before, after);
    }

    /// The cyclic distribution never differs by more than one pattern between
    /// workers, for any worker count.
    #[test]
    fn cyclic_distribution_is_always_balanced(seed in 0u64..200, workers in 2usize..24) {
        let ds = paper_simulated(6, 180, 60, seed).generate();
        let categories = vec![4; ds.patterns.partition_count()];
        let counts: Vec<usize> = (0..workers)
            .map(|w| {
                plf_loadbalance::kernel::WorkerSlices::cyclic(
                    &ds.patterns, w, workers, ds.tree.node_capacity(), &categories,
                ).total_patterns()
            })
            .collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(max - min <= ds.patterns.partition_count(), "unbalanced: {:?}", counts);
        prop_assert_eq!(counts.iter().sum::<usize>(), ds.patterns.total_patterns());
    }

    /// Newick serialization round-trips the topology of random trees.
    #[test]
    fn newick_round_trip(seed in 0u64..500, taxa in 4usize..40) {
        use rand::SeedableRng;
        let names: Vec<String> = (0..taxa).map(|i| format!("t{i}")).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let tree = plf_loadbalance::tree::random::random_tree(&names, &mut rng);
        let text = newick::to_newick(&tree);
        let back = newick::parse_newick(&text).unwrap();
        prop_assert_eq!(back.bipartitions(), tree.bipartitions());
    }

    /// Discrete Γ rates always average to one and increase with the category.
    #[test]
    fn gamma_rates_are_well_formed(alpha in 0.05f64..50.0, categories in 2usize..9) {
        let rates = plf_loadbalance::math::gamma_rates::discrete_gamma_rates(alpha, categories);
        let mean: f64 = rates.iter().sum::<f64>() / categories as f64;
        prop_assert!((mean - 1.0).abs() < 1e-8);
        for w in rates.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// `PartitionAwareLpt` on random mixed DNA/protein datasets: every
    /// worker's share of every partition is a single contiguous run, and the
    /// maximum predicted per-worker cost never exceeds `Block`'s.
    #[test]
    fn partition_aware_lpt_is_contiguous_and_beats_block(
        seed in 0u64..300,
        dna_partitions in 1usize..7,
        protein_partitions in 1usize..4,
        partition_len in 8usize..40,
        workers in 2usize..17,
    ) {
        let ds = mixed_dna_protein(6, dna_partitions, protein_partitions, partition_len, seed)
            .generate();
        let categories = vec![4; ds.patterns.partition_count()];
        let costs = PatternCosts::analytic(&ds.patterns, &categories);
        let ranges: Vec<std::ops::Range<usize>> = (0..ds.patterns.partition_count())
            .map(|p| ds.patterns.global_range(p))
            .collect();
        let strategy = PartitionAwareLpt::new(ranges.clone()).unwrap();
        let a = strategy.assign(&costs, workers).unwrap();
        prop_assert!(
            a.partition_contiguity(&ranges),
            "split per-partition run with {} workers on {}",
            workers,
            ds.spec.name
        );
        let runs = a.contiguous_runs_per_worker();
        prop_assert!(runs.iter().all(|&r| r <= ranges.len()));
        let block = Block.assign(&costs, workers).unwrap();
        prop_assert!(
            a.max_cost() <= block.max_cost() + 1e-9,
            "partition-lpt max {} vs block max {} ({} workers)",
            a.max_cost(),
            block.max_cost(),
            workers
        );
    }

    /// The mask-aware repack likewise keeps every partition's per-worker
    /// share contiguous and never worsens the predicted balance beyond the
    /// levelling tolerance, for any live subset of partitions.
    #[test]
    fn mask_aware_repack_is_partition_contiguous(
        seed in 0u64..200,
        live_mask in 1usize..255,
        workers in 2usize..13,
    ) {
        use plf_loadbalance::kernel::{TraceUnit, WorkTrace};
        use plf_loadbalance::kernel::cost::{OpKind, RegionRecord};

        let ds = mixed_dna_protein(6, 5, 3, 12, seed).generate();
        let categories = vec![4; ds.patterns.partition_count()];
        let costs = PatternCosts::analytic(&ds.patterns, &categories);
        let ranges: Vec<std::ops::Range<usize>> = (0..ds.patterns.partition_count())
            .map(|p| ds.patterns.global_range(p))
            .collect();
        let current = Cyclic.assign(&costs, workers).unwrap();
        // A synthetic masked trace: all live work lands on worker 0, and
        // the recorded masks carry the sampled live subset.
        let active: Vec<bool> = (0..8).map(|p| live_mask & (1 << p) != 0).collect();
        let mut trace = WorkTrace::new(workers);
        for _ in 0..4 {
            let mut r = RegionRecord::new(OpKind::Derivatives, workers);
            r.flops_per_worker[0] = 100.0;
            r.active_partitions = active.clone();
            trace.regions.push(r);
        }
        let mut rescheduler = Rescheduler::new(ReschedulePolicy {
            imbalance_threshold: 1.01,
            min_regions: 4,
            unit: TraceUnit::Flops,
            max_reschedules: 1,
            mask_aware: true,
            mask_decay: 0.85,
        });
        if let Some(decision) = rescheduler
            .consider_masked(&current, &trace, &costs, &ranges)
            .unwrap()
        {
            prop_assert!(decision.assignment.partition_contiguity(&ranges));
            prop_assert_eq!(decision.assignment.pattern_count(), costs.pattern_count());
            // The full-mask balance of the repack stays healthy.
            prop_assert!(
                decision.assignment.imbalance() <= current.imbalance() + 0.25,
                "repack imbalance {} vs cyclic {}",
                decision.assignment.imbalance(),
                current.imbalance()
            );
        }
    }

    /// The shared-table kernels match the per-call reference on random mixed
    /// DNA/protein datasets with random branch lengths: per-partition log
    /// likelihoods agree to ≤ 1e-12 (in fact bit for bit) and the branch
    /// derivatives through the sum-table path do too.
    #[test]
    fn shared_tables_match_reference_on_random_mixed_datasets(
        seed in 0u64..300,
        dna_partitions in 1usize..5,
        protein_partitions in 1usize..3,
        partition_len in 8usize..24,
    ) {
        use rand::{Rng, SeedableRng};

        let ds = mixed_dna_protein(6, dna_partitions, protein_partitions, partition_len, seed)
            .generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let mut tabled =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone()).unwrap();
        let mut reference =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap();
        reference.set_shared_tables(false);

        // Random branch lengths, applied identically to both engines.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x7ab1ed);
        for b in tabled.tree().branches().collect::<Vec<_>>() {
            let t = rng.gen_range(1e-6..2.5f64);
            tabled.set_branch_length(BranchScope::All, b, t);
            reference.set_branch_length(BranchScope::All, b, t);
        }

        let mask = tabled.full_mask();
        let root = tabled.default_root_branch();
        let a = tabled.try_log_likelihood_partitions(root, &mask).unwrap();
        let r = reference.try_log_likelihood_partitions(root, &mask).unwrap();
        for (pi, (x, y)) in a.iter().zip(r.iter()).enumerate() {
            prop_assert!((x - y).abs() <= 1e-12, "partition {}: {} vs {}", pi, x, y);
        }

        // Derivatives at a random probe length on a random internal branch.
        let internal = tabled.tree().internal_branches();
        let b = internal[rng.gen_range(0..internal.len())];
        tabled.try_prepare_branch(b, &mask).unwrap();
        reference.try_prepare_branch(b, &mask).unwrap();
        let t = rng.gen_range(1e-5..2.0f64);
        let lengths: Vec<Option<f64>> = vec![Some(t); tabled.partition_count()];
        let da = tabled.try_branch_derivatives(&lengths).unwrap();
        let dr = reference.try_branch_derivatives(&lengths).unwrap();
        for (pi, (x, y)) in da.iter().zip(dr.iter()).enumerate() {
            let (x, y) = (x.unwrap(), y.unwrap());
            prop_assert!(
                (x.log_likelihood - y.log_likelihood).abs() <= 1e-12,
                "partition {} lnL: {} vs {}", pi, x.log_likelihood, y.log_likelihood
            );
            prop_assert!((x.first - y.first).abs() <= 1e-12 * (1.0 + y.first.abs()));
            prop_assert!((x.second - y.second).abs() <= 1e-12 * (1.0 + y.second.abs()));
        }
    }

    /// Shared tables survive mid-run rescheduling: migrating ownership to a
    /// different strategy (fresh workers, empty buffers, cleared table
    /// cache) drifts the log likelihood by ≤ 1e-8, and a derivative probe
    /// against the pre-migration sum table fails as a typed error instead of
    /// silently reading stale data.
    #[test]
    fn shared_tables_survive_mid_run_rescheduling(
        seed in 0u64..200,
        workers in 2usize..9,
    ) {
        let ds = mixed_dna_protein(6, 3, 2, 16, seed).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let cyclic = schedule(&ds.patterns, &cats, workers, &Cyclic).unwrap();
        let exec = TracingExecutor::from_assignment(
            &ds.patterns,
            &cyclic,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let mut k = LikelihoodKernel::try_new(
            Arc::clone(&ds.patterns),
            ds.tree.clone(),
            models,
            exec,
        )
        .unwrap();
        prop_assert!(k.shared_tables());
        let before = k.try_log_likelihood().unwrap();

        // Build a sum table, then migrate ownership mid-"round".
        let branch = k.tree().internal_branches()[0];
        let mask = k.full_mask();
        k.try_prepare_branch(branch, &mask).unwrap();
        let lpt = schedule(&ds.patterns, &cats, workers, &WeightedLpt).unwrap();
        let patterns = Arc::clone(k.patterns());
        let node_capacity = k.tree().node_capacity();
        k.executor_mut()
            .reassign(&patterns, &lpt, node_capacity, &cats)
            .unwrap();
        k.invalidate_all();

        // The migrated workers own empty sum tables: probing them without
        // re-preparing is the release-mode soundness hole, now typed.
        let lengths: Vec<Option<f64>> = vec![Some(0.1); k.partition_count()];
        match k.try_branch_derivatives(&lengths) {
            Err(KernelError::Op(OpError::SumtableStale { .. })) => {}
            other => prop_assert!(false, "expected SumtableStale, got {:?}", other),
        }

        // Re-preparing recovers, and the likelihood is placement-invariant.
        k.try_prepare_branch(branch, &mask).unwrap();
        prop_assert!(k.try_branch_derivatives(&lengths).is_ok());
        let after = k.try_log_likelihood().unwrap();
        prop_assert!(
            (after - before).abs() <= 1e-8,
            "migration drift: {} vs {}", before, after
        );
    }
}
