//! Property-based integration tests over randomly generated datasets and
//! trees: invariants of the likelihood kernel that must hold regardless of
//! the input.

use plf_loadbalance::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn build_kernel(
    taxa: usize,
    columns: usize,
    partition_len: usize,
    seed: u64,
    mode: BranchLengthMode,
) -> (SequentialKernel, plf_loadbalance::seqgen::GeneratedDataset) {
    let ds = paper_simulated(taxa, columns, partition_len, seed).generate();
    let models = ModelSet::default_for(&ds.patterns, mode);
    let k = SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models);
    (k, ds)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// The likelihood must not depend on where the virtual root is placed.
    #[test]
    fn likelihood_is_root_invariant(seed in 0u64..500, taxa in 4usize..9) {
        let (mut kernel, _) = build_kernel(taxa, 120, 40, seed, BranchLengthMode::PerPartition);
        let branches: Vec<_> = kernel.tree().branches().collect();
        let reference = kernel.try_log_likelihood_at(branches[0]).unwrap();
        for &b in branches.iter().skip(1).step_by(2) {
            let lnl = kernel.try_log_likelihood_at(b).unwrap();
            prop_assert!((lnl - reference).abs() < 1e-7, "branch {}: {} vs {}", b, lnl, reference);
        }
    }

    /// Applying and undoing a random SPR move restores the likelihood exactly.
    #[test]
    fn spr_apply_undo_is_lossless(seed in 0u64..500) {
        let (mut kernel, _) = build_kernel(8, 160, 40, seed, BranchLengthMode::PerPartition);
        let before = kernel.try_log_likelihood().unwrap();
        let tree = kernel.tree().clone();
        let node = tree.internal_nodes().next().unwrap();
        let (subtree, _) = tree.neighbors(node)[0];
        let moves = plf_loadbalance::tree::spr::candidate_moves(&tree, node, subtree, 4);
        if let Some(&mv) = moves.first() {
            let app = kernel.apply_spr(mv).unwrap();
            let _ = kernel.try_log_likelihood().unwrap();
            kernel.undo_spr(&app);
            let after = kernel.try_log_likelihood().unwrap();
            prop_assert!((after - before).abs() < 1e-6, "{} vs {}", before, after);
        }
    }

    /// Branch-length optimization never decreases the log likelihood, under
    /// either scheme and either branch-length mode.
    #[test]
    fn optimization_is_monotone(seed in 0u64..200, new_scheme in proptest::bool::ANY, per_partition in proptest::bool::ANY) {
        let mode = if per_partition { BranchLengthMode::PerPartition } else { BranchLengthMode::Joint };
        let scheme = if new_scheme { ParallelScheme::New } else { ParallelScheme::Old };
        let (mut kernel, _) = build_kernel(6, 120, 60, seed, mode);
        let before = kernel.try_log_likelihood().unwrap();
        let (after, _) = optimize_all_branches(&mut kernel, None, &OptimizerConfig::new(scheme)).unwrap();
        prop_assert!(after >= before - 1e-6, "lnL decreased: {} -> {}", before, after);
    }

    /// The cyclic distribution never differs by more than one pattern between
    /// workers, for any worker count.
    #[test]
    fn cyclic_distribution_is_always_balanced(seed in 0u64..200, workers in 2usize..24) {
        let ds = paper_simulated(6, 180, 60, seed).generate();
        let categories = vec![4; ds.patterns.partition_count()];
        let counts: Vec<usize> = (0..workers)
            .map(|w| {
                plf_loadbalance::kernel::WorkerSlices::cyclic(
                    &ds.patterns, w, workers, ds.tree.node_capacity(), &categories,
                ).total_patterns()
            })
            .collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(max - min <= ds.patterns.partition_count(), "unbalanced: {:?}", counts);
        prop_assert_eq!(counts.iter().sum::<usize>(), ds.patterns.total_patterns());
    }

    /// Newick serialization round-trips the topology of random trees.
    #[test]
    fn newick_round_trip(seed in 0u64..500, taxa in 4usize..40) {
        use rand::SeedableRng;
        let names: Vec<String> = (0..taxa).map(|i| format!("t{i}")).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let tree = plf_loadbalance::tree::random::random_tree(&names, &mut rng);
        let text = newick::to_newick(&tree);
        let back = newick::parse_newick(&text).unwrap();
        prop_assert_eq!(back.bipartitions(), tree.bipartitions());
    }

    /// Discrete Γ rates always average to one and increase with the category.
    #[test]
    fn gamma_rates_are_well_formed(alpha in 0.05f64..50.0, categories in 2usize..9) {
        let rates = plf_loadbalance::math::gamma_rates::discrete_gamma_rates(alpha, categories);
        let mean: f64 = rates.iter().sum::<f64>() / categories as f64;
        prop_assert!((mean - 1.0).abs() < 1e-8);
        for w in rates.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}
