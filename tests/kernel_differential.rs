//! Differential harness for the kernel dispatches: the cache-blocked
//! width-specialized kernels ([`KernelDispatch::Blocked`], the default) must
//! reproduce the scalar reference ([`KernelDispatch::Scalar`]) on *random*
//! inputs, not just on the curated benchmark dataset.
//!
//! Every property drives both dispatches over randomly generated mixed
//! DNA/protein datasets with random branch lengths (including values at the
//! clamp bounds `MIN_BRANCH_LENGTH` / `MAX_BRANCH_LENGTH`), randomly
//! injected ambiguity codes and gaps in the tip rows, and datasets deep
//! enough to cross the CLV scaling threshold.
//!
//! Agreement contract (see `phylo_kernel::blocked`):
//! * **DNA partitions are bit-for-bit**: the blocked 4-wide kernel performs
//!   the same multiply–adds in the same order as the scalar loop, so
//!   per-partition log likelihoods and derivatives compare with `to_bits`.
//! * **Protein partitions carry a documented `1e-12` relative tolerance**:
//!   the 20-wide column-broadcast kernel fuses multiply–adds (skipping the
//!   intermediate rounding of `mul` + `add`), which perturbs CLV entries by
//!   O(1 ulp); everything downstream is shared code.
//!
//! The default profile samples a handful of fixed-seed cases so the suite
//! stays fast in the normal test job; the deep CI job raises the case count
//! via `PLF_DIFFERENTIAL_CASES`.

use plf_loadbalance::prelude::*;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

use plf_loadbalance::seqgen::GeneratedDataset;
use plf_loadbalance::tree::topology::MIN_BRANCH_LENGTH;
use plf_loadbalance::tree::BranchId;

/// Relative lnL tolerance for protein partitions (DNA is exact).
const PROTEIN_REL_TOL: f64 = 1e-12;

/// Relative tolerance for protein *derivatives*: the first/second
/// derivatives divide by per-site likelihoods, and at candidate lengths near
/// the clamp bounds those are tiny — the division amplifies the blocked
/// kernel's O(1 ulp) CLV perturbation by the conditioning of the ratio
/// (measured ≈ 2e-11 relative at `MIN_BRANCH_LENGTH`). The lnL itself stays
/// within [`PROTEIN_REL_TOL`].
const PROTEIN_DERIV_REL_TOL: f64 = 1e-9;

/// Maximum branch length accepted by the engine's clamp.
const MAX_BRANCH_LENGTH: f64 = 10.0;

fn differential_cases() -> u32 {
    std::env::var("PLF_DIFFERENTIAL_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

/// Injects ambiguity codes and gaps into a generated dataset's alignment
/// (per-column alphabet-appropriate: DNA partial ambiguities and `N`/`-`,
/// protein `B`/`X`/`-`), then recompiles the patterns over the unchanged
/// partition set. Exercises the blocked kernels' tip-row paths on masks with
/// more than one set bit.
fn inject_ambiguity(
    ds: &GeneratedDataset,
    fraction: f64,
    rng: &mut ChaCha8Rng,
) -> GeneratedDataset {
    let mut is_protein = vec![false; ds.alignment.columns()];
    for part in ds.partition_set.partitions() {
        for col in part.columns() {
            is_protein[col] = part.data_type == DataType::Protein;
        }
    }
    const DNA_CODES: [char; 5] = ['N', '-', 'R', 'Y', 'W'];
    const PROTEIN_CODES: [char; 3] = ['X', '-', 'B'];
    let rows: Vec<(String, String)> = ds
        .alignment
        .taxa()
        .iter()
        .enumerate()
        .map(|(taxon, name)| {
            let row: String = ds
                .alignment
                .row(taxon)
                .iter()
                .enumerate()
                .map(|(col, &c)| {
                    if rng.gen_bool(fraction) {
                        if is_protein[col] {
                            PROTEIN_CODES[rng.gen_range(0..PROTEIN_CODES.len())]
                        } else {
                            DNA_CODES[rng.gen_range(0..DNA_CODES.len())]
                        }
                    } else {
                        c as char
                    }
                })
                .collect();
            (name.clone(), row)
        })
        .collect();
    let alignment = Alignment::new(rows).expect("mutated alignment stays rectangular");
    let patterns = Arc::new(
        PartitionedPatterns::compile(&alignment, &ds.partition_set)
            .expect("partition set still covers the alignment"),
    );
    GeneratedDataset {
        spec: ds.spec.clone(),
        tree: ds.tree.clone(),
        alignment,
        partition_set: ds.partition_set.clone(),
        patterns,
    }
}

/// Draws one branch length: clamp-bound extremes with positive probability,
/// log-uniform in between — short branches drive CLV entries toward the
/// scaling threshold, long ones toward the stationary distribution.
fn random_branch_length(rng: &mut ChaCha8Rng) -> f64 {
    match rng.gen_range(0..10u32) {
        0 => MIN_BRANCH_LENGTH,
        1 => MAX_BRANCH_LENGTH,
        _ => (rng.gen_range(f64::ln(1e-6)..f64::ln(3.0))).exp(),
    }
}

/// Builds the scalar/blocked kernel pair over the same patterns, tree and
/// models, with identical randomized branch lengths on both.
fn kernel_pair(
    ds: &GeneratedDataset,
    rng: &mut ChaCha8Rng,
) -> (SequentialKernel, SequentialKernel) {
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
    let mut scalar =
        SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone())
            .expect("scalar kernel builds");
    scalar.set_dispatch(KernelDispatch::Scalar);
    let mut blocked = SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models)
        .expect("blocked kernel builds");
    assert_eq!(blocked.dispatch(), KernelDispatch::Blocked, "fast default");

    let branches: Vec<BranchId> = scalar.tree().branches().collect();
    for branch in branches {
        let value = random_branch_length(rng);
        scalar.set_branch_length(BranchScope::All, branch, value);
        blocked.set_branch_length(BranchScope::All, branch, value);
    }
    (scalar, blocked)
}

/// Asserts the per-partition agreement contract: DNA bit-for-bit, protein
/// within the documented relative tolerance.
fn assert_partition_agreement(
    patterns: &PartitionedPatterns,
    scalar: &[f64],
    blocked: &[f64],
    what: &str,
) {
    assert_partition_agreement_tol(patterns, scalar, blocked, what, PROTEIN_REL_TOL)
}

fn assert_partition_agreement_tol(
    patterns: &PartitionedPatterns,
    scalar: &[f64],
    blocked: &[f64],
    what: &str,
    rel_tol: f64,
) {
    assert_eq!(scalar.len(), blocked.len());
    for (pi, (s, b)) in scalar.iter().zip(blocked.iter()).enumerate() {
        let dtype = patterns.partitions[pi].data_type;
        match dtype {
            DataType::Dna => assert_eq!(
                s.to_bits(),
                b.to_bits(),
                "partition {pi} (DNA) {what} not bit-for-bit: {s:?} vs {b:?}"
            ),
            DataType::Protein => {
                let tol = rel_tol * s.abs().max(1.0);
                assert!(
                    (s - b).abs() <= tol,
                    "partition {pi} (protein) {what} drifted: {s} vs {b} (|Δ|={:.3e}, tol={tol:.3e})",
                    (s - b).abs()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: differential_cases(), ..ProptestConfig::default() })]

    /// Per-partition log likelihoods agree between the dispatches on random
    /// mixed datasets with random branch lengths and injected ambiguity.
    #[test]
    fn dispatches_agree_on_random_mixed_datasets(
        seed in 0u64..10_000,
        taxa in 4usize..10,
        dna_parts in 1usize..4,
        prot_parts in 1usize..3,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let base = mixed_dna_protein(taxa, dna_parts, prot_parts, 60, seed).generate();
        let ds = inject_ambiguity(&base, 0.08, &mut rng);
        let (mut scalar, mut blocked) = kernel_pair(&ds, &mut rng);

        let root = scalar.default_root_branch();
        let mask = scalar.full_mask();
        let s = scalar.try_log_likelihood_partitions(root, &mask).expect("scalar evaluates");
        let b = blocked.try_log_likelihood_partitions(root, &mask).expect("blocked evaluates");
        prop_assert!(s.iter().all(|v| v.is_finite()), "scalar lnL not finite: {s:?}");
        assert_partition_agreement(&ds.patterns, &s, &b, "lnL");
    }

    /// Newton–Raphson derivatives (sum table + derivative evaluation off the
    /// dispatch-specific CLVs) agree: bit-for-bit on DNA, within tolerance
    /// on protein — including candidate lengths at the clamp bounds.
    #[test]
    fn dispatches_agree_on_derivatives(
        seed in 0u64..10_000,
        taxa in 4usize..9,
        probe_extreme in proptest::bool::ANY,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD1F);
        let base = mixed_dna_protein(taxa, 2, 1, 50, seed).generate();
        let ds = inject_ambiguity(&base, 0.05, &mut rng);
        let (mut scalar, mut blocked) = kernel_pair(&ds, &mut rng);

        let branch = scalar.default_root_branch();
        let mask = scalar.full_mask();
        scalar.try_prepare_branch(branch, &mask).expect("scalar prepares");
        blocked.try_prepare_branch(branch, &mask).expect("blocked prepares");

        let candidate = if probe_extreme { MIN_BRANCH_LENGTH } else { rng.gen_range(0.01..1.0) };
        let lengths: Vec<Option<f64>> = (0..ds.patterns.partition_count())
            .map(|_| Some(candidate))
            .collect();
        let s = scalar.try_branch_derivatives(&lengths).expect("scalar derivatives");
        let b = blocked.try_branch_derivatives(&lengths).expect("blocked derivatives");
        let unpack = |d: Vec<Option<plf_loadbalance::kernel::ops::EdgeDerivatives>>| {
            let mut lnl = Vec::new();
            let mut first = Vec::new();
            let mut second = Vec::new();
            for e in d.into_iter().flatten() {
                lnl.push(e.log_likelihood);
                first.push(e.first);
                second.push(e.second);
            }
            (lnl, first, second)
        };
        let (s_lnl, s_d1, s_d2) = unpack(s);
        let (b_lnl, b_d1, b_d2) = unpack(b);
        assert_partition_agreement(&ds.patterns, &s_lnl, &b_lnl, "derivative lnL");
        assert_partition_agreement_tol(
            &ds.patterns, &s_d1, &b_d1, "first derivative", PROTEIN_DERIV_REL_TOL,
        );
        assert_partition_agreement_tol(
            &ds.patterns, &s_d2, &b_d2, "second derivative", PROTEIN_DERIV_REL_TOL,
        );
    }

    /// Deep trees with extreme branch lengths cross the CLV scaling
    /// threshold; scaling events and the rescaled likelihoods must be
    /// identical under both dispatches (the blocked kernels compare against
    /// the same `SCALE_THRESHOLD` and multiply by the same `SCALE_FACTOR`).
    #[test]
    fn dispatches_agree_across_scaling_thresholds(seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5CA1E);
        let base = mixed_dna_protein(24, 1, 1, 40, seed).generate();
        let ds = inject_ambiguity(&base, 0.03, &mut rng);
        let (mut scalar, mut blocked) = kernel_pair(&ds, &mut rng);
        // Push every branch long: 24 taxa × near-stationary transition
        // probabilities drive protein CLV entries under the threshold.
        let branches: Vec<BranchId> = scalar.tree().branches().collect();
        for branch in branches {
            let value = rng.gen_range(3.0..MAX_BRANCH_LENGTH);
            scalar.set_branch_length(BranchScope::All, branch, value);
            blocked.set_branch_length(BranchScope::All, branch, value);
        }
        let root = scalar.default_root_branch();
        let mask = scalar.full_mask();
        let s = scalar.try_log_likelihood_partitions(root, &mask).expect("scalar evaluates");
        let b = blocked.try_log_likelihood_partitions(root, &mask).expect("blocked evaluates");
        prop_assert!(s.iter().all(|v| v.is_finite()), "scalar lnL not finite: {s:?}");
        assert_partition_agreement(&ds.patterns, &s, &b, "lnL under scaling");
    }
}

/// The blocked dispatch agrees across all four executors: the sequential
/// engine, real threads, the rayon pool and the 16-worker tracing executor
/// partition the patterns differently (so their partial sums associate
/// differently), but every one of them must land within summation-order
/// noise of the scalar sequential reference.
#[test]
fn blocked_dispatch_agrees_under_all_executors() {
    let ds = mixed_dna_protein(10, 3, 2, 60, 77).generate();
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();

    let mut scalar =
        SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone()).unwrap();
    scalar.set_dispatch(KernelDispatch::Scalar);
    let reference = scalar.try_log_likelihood().unwrap();

    let mut sequential =
        SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone()).unwrap();
    let sequential_lnl = sequential.try_log_likelihood().unwrap();

    let threaded = ThreadedExecutor::from_assignment(
        &ds.patterns,
        &schedule(&ds.patterns, &categories, 4, &WeightedLpt).unwrap(),
        ds.tree.node_capacity(),
        &categories,
    )
    .unwrap();
    let mut threaded_kernel = LikelihoodKernel::try_new(
        Arc::clone(&ds.patterns),
        ds.tree.clone(),
        models.clone(),
        threaded,
    )
    .unwrap();

    let rayon = RayonExecutor::from_assignment(
        &ds.patterns,
        &schedule(&ds.patterns, &categories, 4, &Cyclic).unwrap(),
        ds.tree.node_capacity(),
        &categories,
    )
    .unwrap();
    let mut rayon_kernel = LikelihoodKernel::try_new(
        Arc::clone(&ds.patterns),
        ds.tree.clone(),
        models.clone(),
        rayon,
    )
    .unwrap();

    let tracing = TracingExecutor::from_assignment(
        &ds.patterns,
        &schedule(&ds.patterns, &categories, 16, &WeightedLpt).unwrap(),
        ds.tree.node_capacity(),
        &categories,
    )
    .unwrap();
    let mut tracing_kernel =
        LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, tracing)
            .unwrap();

    for (name, lnl) in [
        ("sequential", sequential_lnl),
        ("threaded-4", threaded_kernel.try_log_likelihood().unwrap()),
        ("rayon-4", rayon_kernel.try_log_likelihood().unwrap()),
        ("tracing-16", tracing_kernel.try_log_likelihood().unwrap()),
    ] {
        assert!(
            (lnl - reference).abs() < 1e-8,
            "{name} blocked dispatch disagrees with the scalar reference: {lnl} vs {reference}"
        );
    }
}

/// Mid-run rescheduling under the blocked dispatch must not drift the
/// result: a mask-aware rescheduled optimization run lands within 1e-8 of
/// the same run without any rescheduling (pattern ownership moves between
/// workers mid-run, the likelihood must not notice).
#[test]
fn blocked_dispatch_survives_midrun_rescheduling() {
    let ds = mixed_dna_protein(10, 2, 2, 50, 91).generate();
    let config = OptimizerConfig::new(ParallelScheme::New);

    let run = |policy: Option<ReschedulePolicy>| {
        let mut builder = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
            .threads(8)
            .strategy(WeightedLpt)
            .timed(true);
        if let Some(policy) = policy {
            builder = builder.rescheduler(policy).mask_aware(true);
        }
        let mut analysis = builder.build_traced().expect("analysis builds");
        analysis
            .optimize(&config)
            .expect("optimization completes")
            .report
            .final_log_likelihood
    };

    let steady = run(None);
    let rescheduled = run(Some(ReschedulePolicy {
        imbalance_threshold: 1.01,
        min_regions: 8,
        unit: TraceUnit::Flops,
        max_reschedules: 4,
        mask_aware: true,
        mask_decay: 0.85,
    }));
    assert!(
        (steady - rescheduled).abs() <= 1e-8,
        "mid-run rescheduling drifted the blocked result: {steady} vs {rescheduled}"
    );
}
