//! Telemetry integration tests: the event stream stays coherent under
//! injected worker deaths, the derived counters agree with the engine's own
//! statistics, and recording does not perturb the likelihood at all.

use std::collections::HashSet;
use std::sync::Arc;

use plf_loadbalance::prelude::*;

fn dataset(seed: u64) -> plf_loadbalance::seqgen::GeneratedDataset {
    mixed_dna_protein(6, 3, 2, 48, seed).generate()
}

/// An injected worker death mid-optimize leaves a coherent event stream:
/// exactly one death and one recovery, every region sequence number unique,
/// and `started - completed == deaths` (the death's region is the only one
/// that never completes). The engine's own `KernelStats::table_builds`
/// agrees with the telemetry counter by construction.
#[test]
fn injected_death_yields_a_coherent_event_stream() {
    let ds = dataset(21);
    let mut analysis = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
        .threads(3)
        .telemetry(TelemetryConfig::default())
        .build()
        .unwrap();
    analysis
        .kernel_mut()
        .executor_mut()
        .inject_worker_panic(1, 40);
    let config = OptimizerConfig {
        max_rounds: 1,
        ..OptimizerConfig::new(ParallelScheme::New)
    };
    let report = analysis.optimize(&config).unwrap();
    assert_eq!(report.recoveries.len(), 1, "the injected death is absorbed");

    let snap = analysis.telemetry_snapshot().expect("telemetry is armed");
    let c = &snap.counters;
    assert_eq!(c.worker_deaths, 1);
    assert_eq!(c.worker_recoveries, 1);
    assert_eq!(
        c.regions_started - c.regions_completed,
        c.worker_deaths,
        "only the dead region may be missing its end"
    );
    assert_eq!(
        c.table_builds,
        analysis.kernel().stats().table_builds,
        "telemetry and KernelStats count the same table builds"
    );

    // Event-level coherence needs the full log.
    assert_eq!(
        c.events_dropped, 0,
        "log capacity must suffice for this run"
    );
    let mut starts = HashSet::new();
    let mut ends = HashSet::new();
    let mut death_at = None;
    let mut recovery_at = None;
    let mut regions_after_recovery = 0u64;
    for (i, event) in snap.events.iter().enumerate() {
        match event {
            TelemetryEvent::RegionStart { region, .. } => {
                assert!(starts.insert(*region), "duplicated region start {region}");
                if recovery_at.is_some() {
                    regions_after_recovery += 1;
                }
            }
            TelemetryEvent::RegionEnd { region, .. } => {
                assert!(ends.insert(*region), "duplicated region end {region}");
                assert!(starts.contains(region), "end without start {region}");
            }
            TelemetryEvent::WorkerDeath { worker, .. } => {
                assert_eq!(*worker, 1);
                death_at = Some(i);
            }
            TelemetryEvent::WorkerRecovery {
                worker, attempt, ..
            } => {
                assert_eq!(*worker, 1);
                assert_eq!(*attempt, 1);
                recovery_at = Some(i);
            }
            _ => {}
        }
    }
    let death_at = death_at.expect("death event recorded");
    let recovery_at = recovery_at.expect("recovery event recorded");
    assert!(death_at < recovery_at, "death precedes its recovery");
    assert!(
        regions_after_recovery > 0,
        "the optimizer resumed issuing regions after the recovery"
    );
    assert_eq!(starts.len() - ends.len(), 1, "exactly one region lost");
}

/// On a traced session with an aggressive rescheduling policy the telemetry
/// counters agree with every other observable: the `RescheduleEvent` list,
/// the per-epoch `WorkTrace` region counts, the optimizer-round count, and
/// the engine's table-build statistic.
#[test]
fn snapshot_counters_agree_with_kernel_trace_and_reschedule_events() {
    let ds = dataset(17);
    let mut analysis = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
        .threads(7)
        .strategy(Cyclic)
        .rescheduler(ReschedulePolicy {
            imbalance_threshold: 1.0001,
            min_regions: 8,
            unit: TraceUnit::Flops,
            max_reschedules: 1,
            mask_aware: false,
            mask_decay: 0.85,
        })
        .telemetry(TelemetryConfig::default())
        .build_traced()
        .unwrap();
    let report = analysis
        .optimize(&OptimizerConfig::new(ParallelScheme::New))
        .unwrap();
    assert!(!report.events.is_empty(), "the policy must trigger");

    let snap = analysis.telemetry_snapshot().expect("telemetry is armed");
    let c = &snap.counters;
    assert_eq!(c.reschedules, report.events.len() as u64);
    assert!(c.reschedules_considered >= c.reschedules);
    assert_eq!(c.optimizer_rounds, report.report.rounds as u64);
    assert_eq!(c.table_builds, analysis.kernel().stats().table_builds);
    assert_eq!(c.worker_deaths, 0);
    assert_eq!(c.regions_started, c.regions_completed);

    // Regions seen by telemetry == regions in the epoch traces captured at
    // each migration plus the live trace since the last one. (The boundary
    // likelihood evaluations around a migration land in one epoch or the
    // next, but never vanish.)
    let traced: usize = report
        .events
        .iter()
        .map(|e| e.epoch_trace.sync_events())
        .sum::<usize>()
        + analysis.trace().sync_events();
    assert_eq!(c.regions_completed as usize, traced);

    // The probe streams and the tip-index cache were exercised: the mixed
    // dataset has protein partitions, so tip lookups hit the cache.
    assert!(c.newton_probes > 0);
    assert!(c.brent_probes > 0);
    assert!(c.tip_hits > 0);
    assert!(snap.tip_cache_hit_rate() > 0.5);
}

/// Recording telemetry must not change a single bit of the result: the same
/// session with telemetry on and off lands on the exact same likelihood.
#[test]
fn telemetry_does_not_perturb_the_likelihood_at_all() {
    let ds = dataset(29);
    let config = OptimizerConfig::new(ParallelScheme::New);
    let mut quiet = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
        .threads(2)
        .build()
        .unwrap();
    let mut loud = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
        .threads(2)
        .telemetry(TelemetryConfig::default())
        .build()
        .unwrap();
    let a = quiet.optimize(&config).unwrap().report.final_log_likelihood;
    let b = loud.optimize(&config).unwrap().report.final_log_likelihood;
    assert_eq!(a.to_bits(), b.to_bits(), "telemetry changed the result");
    assert!(quiet.telemetry_snapshot().is_none());
    assert!(loud.telemetry_snapshot().is_some());
}

/// The two export formats round-trip a real run's snapshot: JSONL → events,
/// Prometheus text → every counter.
#[test]
fn exports_round_trip_a_real_run() {
    let ds = dataset(33);
    let mut analysis = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
        .threads(2)
        .telemetry(TelemetryConfig::default())
        .build()
        .unwrap();
    let _ = analysis
        .optimize(&OptimizerConfig {
            max_rounds: 1,
            ..OptimizerConfig::new(ParallelScheme::New)
        })
        .unwrap();
    let snap = analysis.telemetry_snapshot().unwrap();
    assert!(!snap.events.is_empty());

    let back = TelemetrySnapshot::events_from_jsonl(&snap.to_jsonl());
    assert_eq!(back, snap.events, "JSONL must round-trip the event log");

    let parsed = TelemetrySnapshot::parse_prometheus(&snap.to_prometheus());
    for (name, value) in snap.counters.named() {
        assert_eq!(
            parsed.get(&format!("plf_{name}_total")).copied(),
            Some(value as f64),
            "counter {name} must round-trip"
        );
    }
}
