//! Multi-tenant serving: cross-session isolation, typed admission and
//! per-session telemetry on the shared pool.

use std::sync::Arc;

use plf_loadbalance::prelude::*;
use plf_loadbalance::serve::TenantStrategy;

use plf_loadbalance::seqgen::GeneratedDataset;

/// The dedicated-run baseline: the same dataset, strategy and optimizer on
/// a private executor of the pool's width.
fn solo_final_lnl(ds: &GeneratedDataset, threads: usize) -> f64 {
    let mut analysis = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
        .threads(threads)
        .build()
        .expect("solo build");
    analysis
        .optimize(&OptimizerConfig::new(ParallelScheme::New))
        .expect("solo optimize")
        .report
        .final_log_likelihood
}

fn mixed_fleet(count: usize) -> Vec<GeneratedDataset> {
    (0..count)
        .map(|i| {
            if i % 2 == 0 {
                paper_simulated(6, 160, 40, 100 + i as u64).generate()
            } else {
                mixed_dna_protein(6, 2, 1, 16, 200 + i as u64).generate()
            }
        })
        .collect()
}

#[test]
fn injected_worker_death_stays_tenant_local_and_lnl_stays_bit_identical() {
    let workers = 2;
    let fleet = mixed_fleet(4);
    let solo: Vec<f64> = fleet.iter().map(|ds| solo_final_lnl(ds, workers)).collect();

    let mut pool = SessionManager::new(workers);
    let mut handles = Vec::new();
    for (i, ds) in fleet.iter().enumerate() {
        let mut spec = SessionSpec::new(Arc::clone(&ds.patterns), ds.tree.clone())
            .label(format!("tenant-{i}"));
        if i == 0 {
            // Worker 1 dies on this session's 2nd dispatched op — the
            // evaluate of the initial likelihood, before any parameter
            // commit, so the recovered rerun retraces the solo trajectory.
            spec = spec.inject_worker_fault(1, 1);
        }
        handles.push(pool.submit(spec).expect("admission"));
    }
    let outcomes: Vec<SessionOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("session outcome"))
        .collect();

    for (i, outcome) in outcomes.iter().enumerate() {
        assert_eq!(
            outcome.final_log_likelihood.to_bits(),
            solo[i].to_bits(),
            "session {i} drifted from its dedicated run"
        );
        let expected = usize::from(i == 0);
        assert_eq!(
            outcome.recoveries.len(),
            expected,
            "session {i} saw {} recoveries, expected {expected}",
            outcome.recoveries.len()
        );
    }

    // The panic was observed, quarantined one tenant on one worker, and the
    // pool still admits and serves new sessions on the same threads.
    let stats = pool.stats().expect("stats");
    assert_eq!(stats.worker_panics, 1);
    assert!(stats
        .last_panic
        .as_deref()
        .is_some_and(|m| m.contains("injected")));
    assert_eq!(stats.active_sessions, 0, "finished sessions are retired");

    let late = mixed_fleet(1).remove(0);
    let late_solo = solo_final_lnl(&late, workers);
    let handle = pool
        .submit(SessionSpec::new(Arc::clone(&late.patterns), late.tree.clone()).label("late"))
        .expect("post-fault admission");
    let outcome = handle.join().expect("post-fault session");
    assert_eq!(outcome.final_log_likelihood.to_bits(), late_solo.to_bits());
    assert!(outcome.recoveries.is_empty());
}

#[test]
fn admission_overload_and_zero_weight_are_typed_errors() {
    let strategy = TenantStrategy {
        max_sessions: 0,
        ..TenantStrategy::default()
    };
    let mut pool = SessionManager::with_strategy(2, strategy, None);
    let ds = paper_simulated(6, 120, 30, 7).generate();

    let err = pool
        .submit(SessionSpec::new(Arc::clone(&ds.patterns), ds.tree.clone()))
        .expect_err("a zero-capacity pool must reject");
    assert_eq!(
        err,
        ServeError::Admission(AdmissionError::PoolFull {
            active: 0,
            capacity: 0
        })
    );

    let err = pool
        .submit(SessionSpec::new(Arc::clone(&ds.patterns), ds.tree.clone()).weight(0))
        .expect_err("a zero weight must be rejected");
    assert_eq!(err, ServeError::Admission(AdmissionError::ZeroWeight));
}

#[test]
fn session_build_errors_are_typed_and_do_not_leak_admission_slots() {
    let mut pool = SessionManager::new(2);
    let ds = paper_simulated(6, 120, 30, 8).generate();
    let other = paper_simulated(6, 40, 40, 9).generate();
    // Models built for a different (single-partition) dataset.
    let wrong = ModelSet::default_for(&other.patterns, BranchLengthMode::Joint);
    let err = pool
        .submit(SessionSpec::new(Arc::clone(&ds.patterns), ds.tree.clone()).models(wrong))
        .expect_err("mismatched models must be typed");
    assert!(matches!(
        err,
        ServeError::Kernel(KernelError::ModelCountMismatch { .. })
    ));
    // The failed submit left no half-admitted tenant behind.
    let stats = pool.stats().expect("stats");
    assert_eq!(stats.active_sessions, 0);
}

#[test]
fn pool_telemetry_is_scoped_per_session() {
    let mut pool = SessionManager::with_strategy(
        2,
        TenantStrategy::default(),
        Some(TelemetryConfig::default()),
    );
    let fleet = mixed_fleet(2);
    let handles: Vec<_> = fleet
        .iter()
        .map(|ds| {
            pool.submit(SessionSpec::new(Arc::clone(&ds.patterns), ds.tree.clone()))
                .expect("admission")
        })
        .collect();
    let ids: Vec<u64> = handles.iter().map(|h| h.session()).collect();
    for handle in handles {
        handle.join().expect("session outcome");
    }

    let snapshot = pool.telemetry_snapshot().expect("telemetry configured");
    assert!(snapshot.counters.regions_started > 0);
    for &id in &ids {
        let events = snapshot.session_events(id);
        assert!(
            !events.is_empty(),
            "session {id} left no tagged events in the pool log"
        );
        assert!(events.iter().all(|e| e.session() == Some(id)));
    }
    // The two sessions' slices are disjoint and cover every tagged event.
    let tagged = snapshot
        .events
        .iter()
        .filter(|e| e.session().is_some())
        .count();
    let per_session: usize = ids
        .iter()
        .map(|&id| snapshot.session_events(id).len())
        .sum();
    assert_eq!(tagged, per_session);
}

#[test]
fn fused_batches_actually_share_barriers_across_tenants() {
    let mut pool = SessionManager::new(2);
    let fleet = mixed_fleet(6);
    let handles: Vec<_> = fleet
        .iter()
        .map(|ds| {
            pool.submit(SessionSpec::new(Arc::clone(&ds.patterns), ds.tree.clone()))
                .expect("admission")
        })
        .collect();
    for handle in handles {
        handle.join().expect("session outcome");
    }
    let stats = pool.stats().expect("stats");
    assert!(stats.ops_dispatched > 0);
    assert!(
        stats.max_batch_fused > 1,
        "6 concurrent tenants never shared a barrier (max fused {})",
        stats.max_batch_fused
    );
    // Fusion means strictly fewer barriers than ops.
    assert!(stats.batches < stats.ops_dispatched);
}

/// The pool's sessions run the blocked dispatch (the engine default); each
/// of 8 mixed-alphabet tenants must reproduce its *scalar-dispatch* solo
/// optimum. The two dispatches take microscopically different FP paths on
/// protein partitions (documented ≤1e-12 per evaluation), so the converged
/// optima compare within the optimizer's own convergence tolerance (1e-6),
/// not bitwise. A worker death injected into one tenant stays quarantined
/// exactly as in the bit-identical default-dispatch case.
#[test]
fn blocked_sessions_reproduce_scalar_solo_optima_with_fault_quarantine() {
    let workers = 2;
    let fleet = mixed_fleet(8);
    // Scalar-dispatch solo baselines: same dataset, same strategy, same
    // optimizer, reference kernels.
    let solo_scalar: Vec<f64> = fleet
        .iter()
        .map(|ds| {
            let mut analysis = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
                .threads(workers)
                .kernel(KernelDispatch::Scalar)
                .build()
                .expect("scalar solo build");
            analysis
                .optimize(&OptimizerConfig::new(ParallelScheme::New))
                .expect("scalar solo optimize")
                .report
                .final_log_likelihood
        })
        .collect();

    let mut pool = SessionManager::new(workers);
    let mut handles = Vec::new();
    for (i, ds) in fleet.iter().enumerate() {
        let mut spec = SessionSpec::new(Arc::clone(&ds.patterns), ds.tree.clone())
            .label(format!("blocked-tenant-{i}"));
        if i == 3 {
            spec = spec.inject_worker_fault(1, 1);
        }
        handles.push(pool.submit(spec).expect("admission"));
    }
    let outcomes: Vec<SessionOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("session outcome"))
        .collect();

    for (i, outcome) in outcomes.iter().enumerate() {
        let delta = (outcome.final_log_likelihood - solo_scalar[i]).abs();
        assert!(
            delta <= 1e-6,
            "blocked session {i} drifted {delta:.3e} from its scalar solo optimum \
             ({} vs {})",
            outcome.final_log_likelihood,
            solo_scalar[i]
        );
        let expected = usize::from(i == 3);
        assert_eq!(
            outcome.recoveries.len(),
            expected,
            "session {i} saw {} recoveries, expected {expected}",
            outcome.recoveries.len()
        );
    }
    let stats = pool.stats().expect("stats");
    assert_eq!(stats.worker_panics, 1, "exactly the injected death");
    assert_eq!(stats.active_sessions, 0, "finished sessions are retired");
}
