//! Cross-crate integration tests: the full pipeline from dataset generation
//! through the kernel, the parallel executors, the optimizers and the tree
//! search, checking that every configuration agrees on the likelihood.

use plf_loadbalance::prelude::*;
use std::sync::Arc;

fn dataset(seed: u64) -> plf_loadbalance::seqgen::GeneratedDataset {
    paper_simulated(10, 400, 80, seed).generate()
}

#[test]
fn all_executors_agree_on_the_likelihood() {
    let ds = dataset(1);
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();

    let mut sequential =
        SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone());
    let reference = sequential.log_likelihood();

    let threaded = ThreadedExecutor::from_assignment(
        &ds.patterns,
        &schedule(&ds.patterns, &categories, 4, &Cyclic).unwrap(),
        ds.tree.node_capacity(),
        &categories,
    )
    .unwrap();
    let mut threaded_kernel = LikelihoodKernel::new(
        Arc::clone(&ds.patterns),
        ds.tree.clone(),
        models.clone(),
        threaded,
    );

    let rayon = RayonExecutor::from_assignment(
        &ds.patterns,
        &schedule(&ds.patterns, &categories, 4, &Block).unwrap(),
        ds.tree.node_capacity(),
        &categories,
    )
    .unwrap();
    let mut rayon_kernel = LikelihoodKernel::new(
        Arc::clone(&ds.patterns),
        ds.tree.clone(),
        models.clone(),
        rayon,
    );

    let tracing = TracingExecutor::from_assignment(
        &ds.patterns,
        &schedule(&ds.patterns, &categories, 16, &WeightedLpt).unwrap(),
        ds.tree.node_capacity(),
        &categories,
    )
    .unwrap();
    let mut tracing_kernel =
        LikelihoodKernel::new(Arc::clone(&ds.patterns), ds.tree.clone(), models, tracing);

    for (name, lnl) in [
        ("threaded", threaded_kernel.log_likelihood()),
        ("rayon", rayon_kernel.log_likelihood()),
        ("tracing-16", tracing_kernel.log_likelihood()),
    ] {
        assert!(
            (lnl - reference).abs() < 1e-8,
            "{name} executor disagrees: {lnl} vs {reference}"
        );
    }
}

#[test]
fn kernel_agrees_with_naive_reference_on_generated_data() {
    use plf_loadbalance::kernel::naive::naive_log_likelihood;
    use plf_loadbalance::kernel::BranchLengths;

    let ds = dataset(2);
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
    let mut kernel =
        SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone());
    let fast = kernel.log_likelihood();
    let bl = BranchLengths::from_tree(
        &ds.tree,
        ds.patterns.partition_count(),
        BranchLengthMode::Joint,
    );
    let slow = naive_log_likelihood(&ds.patterns, &ds.tree, &models, &bl);
    assert!((fast - slow).abs() < 1e-7, "kernel {fast} vs naive {slow}");
}

#[test]
fn old_and_new_schemes_reach_the_same_model_estimate() {
    let ds = dataset(3);
    let run = |scheme| {
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let mut kernel = SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models);
        let report = optimize_model_parameters(&mut kernel, &OptimizerConfig::new(scheme));
        (report, kernel)
    };
    let (report_old, kernel_old) = run(ParallelScheme::Old);
    let (report_new, kernel_new) = run(ParallelScheme::New);

    let rel = (report_old.final_log_likelihood - report_new.final_log_likelihood).abs()
        / report_old.final_log_likelihood.abs();
    assert!(
        rel < 1e-3,
        "{} vs {}",
        report_old.final_log_likelihood,
        report_new.final_log_likelihood
    );
    assert!(report_old.sync_events > report_new.sync_events);

    for p in 0..kernel_old.partition_count() {
        let a = kernel_old.alpha(p);
        let b = kernel_new.alpha(p);
        assert!(
            (a.ln() - b.ln()).abs() < 0.1,
            "partition {p}: alpha {a} vs {b}"
        );
    }
}

#[test]
fn search_with_threads_improves_and_stays_consistent() {
    let ds = dataset(4);
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let executor = ThreadedExecutor::from_assignment(
        &ds.patterns,
        &schedule(&ds.patterns, &categories, 2, &Cyclic).unwrap(),
        ds.tree.node_capacity(),
        &categories,
    )
    .unwrap();
    // Start from a random tree so the search has something to do.
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
    let start = plf_loadbalance::tree::random::random_tree(&ds.patterns.taxa, &mut rng);
    let mut kernel = LikelihoodKernel::new(Arc::clone(&ds.patterns), start, models, executor);

    let mut config = SearchConfig::new(ParallelScheme::New);
    config.max_rounds = 1;
    config.spr_radius = 3;
    config.optimize_model_between_rounds = false;
    let result = tree_search(&mut kernel, &config);
    assert!(result.final_log_likelihood >= result.initial_log_likelihood);
    assert!(kernel.tree().validate().is_ok());
}

#[test]
fn dataset_io_round_trip_through_files() {
    use plf_loadbalance::data::io;

    let ds = dataset(5);
    let dir = std::env::temp_dir();
    let fasta_path = dir.join("plf_integration_roundtrip.fasta");
    let partition_path = dir.join("plf_integration_roundtrip.part");

    std::fs::write(&fasta_path, io::write_fasta(&ds.alignment, 80)).unwrap();
    std::fs::write(&partition_path, ds.partition_set.to_file_string()).unwrap();

    let alignment = io::read_fasta_file(&fasta_path).unwrap();
    let partitions =
        PartitionSet::parse(&std::fs::read_to_string(&partition_path).unwrap()).unwrap();
    let recompiled = PartitionedPatterns::compile(&alignment, &partitions).unwrap();
    assert_eq!(recompiled.total_patterns(), ds.patterns.total_patterns());
    assert_eq!(recompiled.partition_count(), ds.patterns.partition_count());

    std::fs::remove_file(&fasta_path).ok();
    std::fs::remove_file(&partition_path).ok();
}

// The shared probe from the bench crate keeps this acceptance test and the
// `adaptive_resched` report measuring imbalance the same way.
use phylo_bench::scheduling::probe_wall_clock_imbalance;

/// The PR's acceptance criterion: on a mixed DNA/protein dataset with one
/// artificially skewed worker, a single mid-run reschedule driven by real
/// wall-clock measurements lands strictly below the static cyclic baseline,
/// and the migration does not move the log likelihood.
#[test]
fn mid_run_rescheduling_beats_static_cyclic_on_a_skewed_worker() {
    let ds = mixed_dna_protein(6, 4, 2, 40, 4242).generate();
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let costs = PatternCosts::analytic(&ds.patterns, &categories);
    let cyclic = schedule(&ds.patterns, &categories, 4, &Cyclic).unwrap();

    let mut sequential =
        SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone());
    let reference = sequential.log_likelihood();

    // Worker 0 sleeps 100 µs per active pattern in every region — an
    // emulated throttled core whose slowdown is proportional to its
    // assigned work, dominating any build-profile compute noise.
    let skew = WorkerSkew {
        worker: 0,
        nanos_per_pattern: 100_000,
    };
    let timed_kernel = |assignment: &Assignment| {
        let executor = ThreadedExecutor::with_options(
            &ds.patterns,
            assignment,
            ds.tree.node_capacity(),
            &categories,
            ExecutorOptions {
                timed: true,
                skew: Some(skew),
            },
        )
        .unwrap();
        LikelihoodKernel::new(
            Arc::clone(&ds.patterns),
            ds.tree.clone(),
            models.clone(),
            executor,
        )
    };

    let mut static_kernel = timed_kernel(&cyclic);
    let cyclic_imbalance = probe_wall_clock_imbalance(&mut static_kernel, 3);
    drop(static_kernel);

    let mut kernel = timed_kernel(&cyclic);
    let mut rescheduler = Rescheduler::new(ReschedulePolicy {
        imbalance_threshold: 1.25,
        min_regions: 16,
        unit: TraceUnit::Seconds,
        max_reschedules: 1,
    });
    let config = OptimizerConfig::search_phase(ParallelScheme::New);
    let adaptive =
        optimize_model_parameters_adaptive(&mut kernel, &config, &mut rescheduler, &costs).unwrap();
    assert_eq!(
        adaptive.events.len(),
        1,
        "a 100 µs/pattern skew on one of four workers must trigger the policy"
    );
    let event = &adaptive.events[0];
    assert!(
        event.log_likelihood_drift() <= 1e-8,
        "migration drifted the log likelihood by {}",
        event.log_likelihood_drift()
    );
    assert!(event.measured_imbalance > 1.25);

    let adaptive_imbalance = probe_wall_clock_imbalance(&mut kernel, 3);
    assert!(
        adaptive_imbalance < cyclic_imbalance,
        "measured imbalance after one mid-run reschedule ({adaptive_imbalance:.3}) must be \
         strictly below the static cyclic baseline ({cyclic_imbalance:.3})"
    );

    // The optimizer improved on the starting likelihood, and the migrated
    // executor still evaluates a finite, optimized likelihood (the exact
    // placement-invariance across the migration is the 1e-8 event check
    // above; `reference` is the unoptimized starting point).
    assert!(adaptive.report.final_log_likelihood > reference);
    kernel.invalidate_all();
    let recomputed = kernel.log_likelihood();
    assert!(
        (recomputed - adaptive.report.final_log_likelihood).abs() < 1e-8,
        "full recomputation on the migrated workers must reproduce the \
         optimizer's final likelihood: {recomputed} vs {}",
        adaptive.report.final_log_likelihood
    );
}
