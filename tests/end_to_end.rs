//! Cross-crate integration tests: the full pipeline from dataset generation
//! through the kernel, the parallel executors, the optimizers and the tree
//! search, checking that every configuration agrees on the likelihood.

use plf_loadbalance::prelude::*;
use std::sync::Arc;

fn dataset(seed: u64) -> plf_loadbalance::seqgen::GeneratedDataset {
    paper_simulated(10, 400, 80, seed).generate()
}

#[test]
fn all_executors_agree_on_the_likelihood() {
    let ds = dataset(1);
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();

    let mut sequential =
        SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone()).unwrap();
    let reference = sequential.try_log_likelihood().unwrap();

    let threaded = ThreadedExecutor::from_assignment(
        &ds.patterns,
        &schedule(&ds.patterns, &categories, 4, &Cyclic).unwrap(),
        ds.tree.node_capacity(),
        &categories,
    )
    .unwrap();
    let mut threaded_kernel = LikelihoodKernel::try_new(
        Arc::clone(&ds.patterns),
        ds.tree.clone(),
        models.clone(),
        threaded,
    )
    .unwrap();

    let rayon = RayonExecutor::from_assignment(
        &ds.patterns,
        &schedule(&ds.patterns, &categories, 4, &Block).unwrap(),
        ds.tree.node_capacity(),
        &categories,
    )
    .unwrap();
    let mut rayon_kernel = LikelihoodKernel::try_new(
        Arc::clone(&ds.patterns),
        ds.tree.clone(),
        models.clone(),
        rayon,
    )
    .unwrap();

    let tracing = TracingExecutor::from_assignment(
        &ds.patterns,
        &schedule(&ds.patterns, &categories, 16, &WeightedLpt).unwrap(),
        ds.tree.node_capacity(),
        &categories,
    )
    .unwrap();
    let mut tracing_kernel =
        LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, tracing)
            .unwrap();

    for (name, lnl) in [
        ("threaded", threaded_kernel.try_log_likelihood().unwrap()),
        ("rayon", rayon_kernel.try_log_likelihood().unwrap()),
        ("tracing-16", tracing_kernel.try_log_likelihood().unwrap()),
    ] {
        assert!(
            (lnl - reference).abs() < 1e-8,
            "{name} executor disagrees: {lnl} vs {reference}"
        );
    }
}

#[test]
fn kernel_agrees_with_naive_reference_on_generated_data() {
    use plf_loadbalance::kernel::naive::naive_log_likelihood;
    use plf_loadbalance::kernel::BranchLengths;

    let ds = dataset(2);
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
    let mut kernel =
        SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone()).unwrap();
    let fast = kernel.try_log_likelihood().unwrap();
    let bl = BranchLengths::from_tree(
        &ds.tree,
        ds.patterns.partition_count(),
        BranchLengthMode::Joint,
    );
    let slow = naive_log_likelihood(&ds.patterns, &ds.tree, &models, &bl);
    assert!((fast - slow).abs() < 1e-7, "kernel {fast} vs naive {slow}");
}

#[test]
fn old_and_new_schemes_reach_the_same_model_estimate() {
    let ds = dataset(3);
    let run = |scheme| {
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let mut kernel =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap();
        let report = optimize_model_parameters(&mut kernel, &OptimizerConfig::new(scheme)).unwrap();
        (report, kernel)
    };
    let (report_old, kernel_old) = run(ParallelScheme::Old);
    let (report_new, kernel_new) = run(ParallelScheme::New);

    let rel = (report_old.final_log_likelihood - report_new.final_log_likelihood).abs()
        / report_old.final_log_likelihood.abs();
    assert!(
        rel < 1e-3,
        "{} vs {}",
        report_old.final_log_likelihood,
        report_new.final_log_likelihood
    );
    assert!(report_old.sync_events > report_new.sync_events);

    for p in 0..kernel_old.partition_count() {
        let a = kernel_old.alpha(p);
        let b = kernel_new.alpha(p);
        assert!(
            (a.ln() - b.ln()).abs() < 0.1,
            "partition {p}: alpha {a} vs {b}"
        );
    }
}

#[test]
fn search_with_threads_improves_and_stays_consistent() {
    let ds = dataset(4);
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let executor = ThreadedExecutor::from_assignment(
        &ds.patterns,
        &schedule(&ds.patterns, &categories, 2, &Cyclic).unwrap(),
        ds.tree.node_capacity(),
        &categories,
    )
    .unwrap();
    // Start from a random tree so the search has something to do.
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
    let start = plf_loadbalance::tree::random::random_tree(&ds.patterns.taxa, &mut rng);
    let mut kernel =
        LikelihoodKernel::try_new(Arc::clone(&ds.patterns), start, models, executor).unwrap();

    let mut config = SearchConfig::new(ParallelScheme::New);
    config.max_rounds = 1;
    config.spr_radius = 3;
    config.optimize_model_between_rounds = false;
    let result = tree_search(&mut kernel, &config).unwrap();
    assert!(result.final_log_likelihood >= result.initial_log_likelihood);
    assert!(kernel.tree().validate().is_ok());
}

#[test]
fn dataset_io_round_trip_through_files() {
    use plf_loadbalance::data::io;

    let ds = dataset(5);
    let dir = std::env::temp_dir();
    let fasta_path = dir.join("plf_integration_roundtrip.fasta");
    let partition_path = dir.join("plf_integration_roundtrip.part");

    std::fs::write(&fasta_path, io::write_fasta(&ds.alignment, 80)).unwrap();
    std::fs::write(&partition_path, ds.partition_set.to_file_string()).unwrap();

    let alignment = io::read_fasta_file(&fasta_path).unwrap();
    let partitions =
        PartitionSet::parse(&std::fs::read_to_string(&partition_path).unwrap()).unwrap();
    let recompiled = PartitionedPatterns::compile(&alignment, &partitions).unwrap();
    assert_eq!(recompiled.total_patterns(), ds.patterns.total_patterns());
    assert_eq!(recompiled.partition_count(), ds.patterns.partition_count());

    std::fs::remove_file(&fasta_path).ok();
    std::fs::remove_file(&partition_path).ok();
}

// The shared probe from the bench crate keeps this acceptance test and the
// `adaptive_resched` report measuring imbalance the same way.
use phylo_bench::scheduling::probe_wall_clock_imbalance;

/// The PR's acceptance criterion: on a mixed DNA/protein dataset with one
/// artificially skewed worker, a single mid-run reschedule driven by real
/// wall-clock measurements lands strictly below the static cyclic baseline,
/// and the migration does not move the log likelihood.
#[test]
fn mid_run_rescheduling_beats_static_cyclic_on_a_skewed_worker() {
    let ds = mixed_dna_protein(6, 4, 2, 40, 4242).generate();
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let costs = PatternCosts::analytic(&ds.patterns, &categories);
    let cyclic = schedule(&ds.patterns, &categories, 4, &Cyclic).unwrap();

    let mut sequential =
        SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone()).unwrap();
    let reference = sequential.try_log_likelihood().unwrap();

    // Worker 0 sleeps 100 µs per active pattern in every region — an
    // emulated throttled core whose slowdown is proportional to its
    // assigned work, dominating any build-profile compute noise.
    let skew = WorkerSkew {
        worker: 0,
        nanos_per_pattern: 100_000,
    };
    let timed_kernel = |assignment: &Assignment| {
        let executor = ThreadedExecutor::with_options(
            &ds.patterns,
            assignment,
            ds.tree.node_capacity(),
            &categories,
            ExecutorOptions {
                timed: true,
                skew: Some(skew),
            },
        )
        .unwrap();
        LikelihoodKernel::try_new(
            Arc::clone(&ds.patterns),
            ds.tree.clone(),
            models.clone(),
            executor,
        )
        .unwrap()
    };

    let mut static_kernel = timed_kernel(&cyclic);
    let cyclic_imbalance = probe_wall_clock_imbalance(&mut static_kernel, 3);
    drop(static_kernel);

    let mut kernel = timed_kernel(&cyclic);
    let mut rescheduler = Rescheduler::new(ReschedulePolicy {
        imbalance_threshold: 1.25,
        min_regions: 16,
        unit: TraceUnit::Seconds,
        max_reschedules: 1,
        mask_aware: false,
        mask_decay: 0.85,
    });
    let config = OptimizerConfig::search_phase(ParallelScheme::New);
    let adaptive =
        optimize_model_parameters_adaptive(&mut kernel, &config, &mut rescheduler, &costs).unwrap();
    assert_eq!(
        adaptive.events.len(),
        1,
        "a 100 µs/pattern skew on one of four workers must trigger the policy"
    );
    let event = &adaptive.events[0];
    assert!(
        event.log_likelihood_drift() <= 1e-8,
        "migration drifted the log likelihood by {}",
        event.log_likelihood_drift()
    );
    assert!(event.measured_imbalance > 1.25);

    let adaptive_imbalance = probe_wall_clock_imbalance(&mut kernel, 3);
    assert!(
        adaptive_imbalance < cyclic_imbalance,
        "measured imbalance after one mid-run reschedule ({adaptive_imbalance:.3}) must be \
         strictly below the static cyclic baseline ({cyclic_imbalance:.3})"
    );

    // The optimizer improved on the starting likelihood, and the migrated
    // executor still evaluates a finite, optimized likelihood (the exact
    // placement-invariance across the migration is the 1e-8 event check
    // above; `reference` is the unoptimized starting point).
    assert!(adaptive.report.final_log_likelihood > reference);
    kernel.invalidate_all();
    let recomputed = kernel.try_log_likelihood().unwrap();
    assert!(
        (recomputed - adaptive.report.final_log_likelihood).abs() < 1e-8,
        "full recomputation on the migrated workers must reproduce the \
         optimizer's final likelihood: {recomputed} vs {}",
        adaptive.report.final_log_likelihood
    );
}

/// The fallible-API acceptance criterion: a worker panic injected mid-run
/// through the real master/worker machinery is *recovered* by the driver via
/// `Reassignable` — the run completes instead of aborting the process, the
/// recovery is reported, and a full CLV recomputation on the rebuilt workers
/// reproduces the final log likelihood to ≤ 1e-8.
#[test]
fn driver_recovers_from_an_injected_worker_death_mid_optimize() {
    let ds = mixed_dna_protein(6, 4, 2, 40, 2026).generate();
    let mut analysis = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
        .threads(4)
        .strategy(Cyclic)
        .timed(true)
        .rescheduler(ReschedulePolicy {
            imbalance_threshold: f64::MAX, // recovery only; no migration noise
            min_regions: 1,
            unit: TraceUnit::Seconds,
            max_reschedules: 0,
            mask_aware: false,
            mask_decay: 0.85,
        })
        .build()
        .unwrap();

    // Worker 2 dies ~40 regions into the run — deep inside the first
    // optimizer round, after real work has been committed.
    analysis
        .kernel_mut()
        .executor_mut()
        .inject_worker_panic(2, 40);

    let config = OptimizerConfig::new(ParallelScheme::New);
    let outcome = analysis
        .optimize(&config)
        .expect("the driver must absorb the worker death and finish");

    assert_eq!(
        outcome.recoveries.len(),
        1,
        "exactly one recovery must be reported: {:?}",
        outcome.recoveries
    );
    assert_eq!(outcome.recoveries[0].worker, 2);
    assert!(
        outcome.report.final_log_likelihood > outcome.report.initial_log_likelihood,
        "the resumed run must still optimize: {} -> {}",
        outcome.report.initial_log_likelihood,
        outcome.report.final_log_likelihood
    );

    // The recovery (reassign + CLV invalidation) must not drift the
    // likelihood: recomputing everything from scratch on the rebuilt
    // workers reproduces the driver's final value.
    analysis.kernel_mut().invalidate_all();
    let recomputed = analysis.log_likelihood().unwrap();
    assert!(
        (recomputed - outcome.report.final_log_likelihood).abs() <= 1e-8,
        "recovery drifted the lnL: {recomputed} vs {}",
        outcome.report.final_log_likelihood
    );
}

/// A second death past the budget is an error value, never a process abort.
#[test]
fn worker_deaths_past_the_recovery_budget_fail_as_values() {
    let ds = paper_simulated(6, 80, 40, 2027).generate();
    let mut analysis = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
        .threads(2)
        .build()
        .unwrap();
    let mut config = OptimizerConfig::new(ParallelScheme::New);
    config.max_worker_recoveries = 0;
    analysis
        .kernel_mut()
        .executor_mut()
        .inject_worker_panic(1, 5);
    let err = analysis.optimize(&config).unwrap_err();
    assert!(
        matches!(
            err,
            AnalysisError::Kernel(KernelError::Exec(ExecError::WorkerDied { worker: 1 }))
        ),
        "{err:?}"
    );
    // The session object survives: recovery is still possible by hand.
    assert!(analysis.kernel().executor().poisoned_by().is_some());
}

/// Builder misuse surfaces as typed errors through the facade, not panics.
#[test]
fn analysis_builder_misuse_is_typed() {
    let ds = paper_simulated(6, 80, 40, 2028).generate();
    assert_eq!(
        Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
            .threads(0)
            .build()
            .unwrap_err(),
        AnalysisError::Sched(SchedError::NoWorkers)
    );

    let single = paper_simulated(6, 40, 40, 2029).generate();
    let wrong_models = ModelSet::default_for(&single.patterns, BranchLengthMode::PerPartition);
    assert!(matches!(
        Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
            .models(wrong_models)
            .threads(2)
            .build()
            .unwrap_err(),
        AnalysisError::Kernel(KernelError::ModelCountMismatch { .. })
    ));

    let skewed = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
        .threads(2)
        .skew(WorkerSkew {
            worker: 7,
            nanos_per_pattern: 1,
        })
        .build()
        .unwrap_err();
    assert!(matches!(
        skewed,
        AnalysisError::Sched(SchedError::SkewWorkerOutOfRange { worker: 7, .. })
    ));
}

/// The mask-aware acceptance criterion: within-round rescheduling driven by
/// the convergence-mask shape fires on the staggered-convergence dataset and
/// preserves the log likelihood to ≤ 1e-8 across every migration — both at
/// the migration boundary (event check) and against a full recomputation on
/// the migrated workers.
#[test]
fn mask_aware_rescheduling_preserves_the_likelihood() {
    use phylo_bench::scheduling::staggered_convergence_dataset;

    let ds = staggered_convergence_dataset(2026);
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let costs = PatternCosts::analytic(&ds.patterns, &categories);
    let cyclic = schedule(&ds.patterns, &categories, 16, &Cyclic).unwrap();
    let executor = TracingExecutor::from_assignment(
        &ds.patterns,
        &cyclic,
        ds.tree.node_capacity(),
        &categories,
    )
    .unwrap();
    let mut kernel =
        LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, executor)
            .unwrap();

    let mut rescheduler = Rescheduler::new(ReschedulePolicy {
        imbalance_threshold: 1.25,
        min_regions: 12,
        unit: TraceUnit::Flops,
        max_reschedules: 4,
        mask_aware: true,
        mask_decay: 0.85,
    });
    let config = OptimizerConfig::new(ParallelScheme::New);
    let adaptive =
        optimize_model_parameters_adaptive(&mut kernel, &config, &mut rescheduler, &costs).unwrap();
    assert!(
        adaptive.events.iter().any(|e| e.within_round),
        "the staggered dataset must trigger a within-round migration: {:?}",
        adaptive
            .events
            .iter()
            .map(|e| (e.round, e.within_round))
            .collect::<Vec<_>>()
    );
    for event in &adaptive.events {
        assert!(
            event.log_likelihood_drift() <= 1e-8,
            "migration drifted the log likelihood by {}",
            event.log_likelihood_drift()
        );
        // The migrated placement keeps the partition-contiguity invariant.
        let ranges: Vec<std::ops::Range<usize>> = (0..ds.patterns.partition_count())
            .map(|p| ds.patterns.global_range(p))
            .collect();
        assert!(kernel
            .executor_mut()
            .assignment()
            .partition_contiguity(&ranges));
    }
    // Full recomputation on the final (migrated) workers reproduces the
    // optimizer's final likelihood.
    kernel.invalidate_all();
    let recomputed = kernel.try_log_likelihood().unwrap();
    assert!(
        (recomputed - adaptive.report.final_log_likelihood).abs() <= 1e-8,
        "recomputation drifted: {recomputed} vs {}",
        adaptive.report.final_log_likelihood
    );
}

/// The rayon backend recovers from the same fault-injection as the threaded
/// one: an injected worker panic mid-optimization is absorbed by the
/// resilient driver via `Reassignable`, and the run completes with the
/// recovery reported.
#[test]
fn rayon_driver_recovers_from_an_injected_worker_death() {
    let ds = paper_simulated(6, 120, 40, 2031).generate();
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let assignment = schedule(&ds.patterns, &categories, 3, &Cyclic).unwrap();
    let executor = RayonExecutor::from_assignment(
        &ds.patterns,
        &assignment,
        ds.tree.node_capacity(),
        &categories,
    )
    .unwrap();
    let mut kernel =
        LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, executor)
            .unwrap();
    kernel.executor_mut().inject_worker_panic(2, 25);

    let config = OptimizerConfig::new(ParallelScheme::New);
    let (report, recoveries) = optimize_model_parameters_resilient(&mut kernel, &config)
        .expect("the driver must absorb the rayon worker death and finish");
    assert_eq!(recoveries.len(), 1, "{recoveries:?}");
    assert_eq!(recoveries[0].worker, 2);
    assert!(report.final_log_likelihood > report.initial_log_likelihood);

    kernel.invalidate_all();
    let recomputed = kernel.try_log_likelihood().unwrap();
    assert!(
        (recomputed - report.final_log_likelihood).abs() <= 1e-8,
        "rayon recovery drifted the lnL: {recomputed} vs {}",
        report.final_log_likelihood
    );
}

/// The traced facade session reproduces the figure pipeline: a search run
/// under a rescheduling policy on virtual workers keeps the likelihood
/// placement-invariant across migrations.
#[test]
fn facade_search_with_rescheduling_preserves_the_likelihood() {
    let ds = mixed_dna_protein(6, 3, 2, 64, 2030).generate();
    let mut analysis = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
        .threads(7)
        .strategy(Cyclic)
        .rescheduler(ReschedulePolicy {
            imbalance_threshold: 1.0001,
            min_regions: 8,
            unit: TraceUnit::Flops,
            max_reschedules: 1,
            mask_aware: false,
            mask_decay: 0.85,
        })
        .build_traced()
        .unwrap();
    let mut config = SearchConfig::new(ParallelScheme::New);
    config.max_rounds = 2;
    config.spr_radius = 2;
    config.optimize_model_between_rounds = false;
    let outcome = analysis.run_search(&config).unwrap();
    assert!(
        !outcome.events.is_empty(),
        "the low threshold must trigger a mid-search migration"
    );
    for event in &outcome.events {
        assert!(
            event.log_likelihood_drift() < 1e-8,
            "migration drifted the likelihood by {}",
            event.log_likelihood_drift()
        );
    }
    assert_eq!(analysis.assignment().strategy(), "speed-lpt");
}
